"""Timing primitives.

``measure`` returns the full repetition sample; the paper reports the
*minimum* over 20 repetitions, so :attr:`TimingSample.best` is the headline
statistic, but quartiles are retained for the bootstrap test.
"""

from __future__ import annotations

import dataclasses
import gc
import time
from collections.abc import Callable

import numpy as np

from ..config import config
from ..errors import BenchmarkError


@dataclasses.dataclass(frozen=True)
class TimingSample:
    """Per-repetition wall times of one implementation."""

    label: str
    times: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times:
            raise BenchmarkError(f"{self.label}: empty timing sample")

    @property
    def best(self) -> float:
        """Minimum — the paper's headline statistic."""
        return min(self.times)

    @property
    def median(self) -> float:
        return float(np.median(self.times))

    @property
    def mean(self) -> float:
        return float(np.mean(self.times))

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.times, q))

    def as_array(self) -> np.ndarray:
        return np.asarray(self.times, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimingSample({self.label!r}, n={len(self.times)}, "
            f"best={self.best:.4g}s, median={self.median:.4g}s)"
        )


def measure(
    fn: Callable[[], object],
    *,
    label: str = "impl",
    repetitions: int | None = None,
    warmup: int | None = None,
    disable_gc: bool = True,
) -> TimingSample:
    """Time ``fn()`` over repeated calls.

    Warm-up runs (default from config; they also absorb trace/compile cost,
    mirroring the paper's exclusion of decorator overheads) are untimed.
    GC is paused around each timed region so collection pauses don't land
    in the sample.
    """
    reps = config.repetitions if repetitions is None else repetitions
    warm = config.warmup if warmup is None else warmup
    if reps < 1:
        raise BenchmarkError(f"repetitions must be >= 1, got {reps}")
    for _ in range(warm):
        fn()
    times: list[float] = []
    gc_was_enabled = gc.isenabled()
    try:
        if disable_gc:
            gc.collect()
            gc.disable()
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
    finally:
        if disable_gc and gc_was_enabled:
            gc.enable()
    return TimingSample(label, tuple(times))


def measure_callable_pair(
    fn_a: Callable[[], object],
    fn_b: Callable[[], object],
    *,
    labels: tuple[str, str] = ("a", "b"),
    repetitions: int | None = None,
    warmup: int | None = None,
) -> tuple[TimingSample, TimingSample]:
    """Measure two implementations with *interleaved* repetitions.

    Interleaving makes the pair robust against slow drift (thermal,
    frequency scaling): each repetition of A is adjacent in time to one of
    B.  Used by the significance-test paths.
    """
    reps = config.repetitions if repetitions is None else repetitions
    warm = config.warmup if warmup is None else warmup
    for _ in range(warm):
        fn_a()
        fn_b()
    times_a: list[float] = []
    times_b: list[float] = []
    gc_was_enabled = gc.isenabled()
    try:
        gc.collect()
        gc.disable()
        for _ in range(reps):
            start = time.perf_counter()
            fn_a()
            times_a.append(time.perf_counter() - start)
            start = time.perf_counter()
            fn_b()
            times_b.append(time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return (
        TimingSample(labels[0], tuple(times_a)),
        TimingSample(labels[1], tuple(times_b)),
    )
