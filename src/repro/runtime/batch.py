"""Batched plan execution: one compiled plan over many feed sets.

This is the throughput-serving shape the ROADMAP's north star asks for:
compile once, then stream independent requests through the plan.  Two
strategies:

* sequential — lowest latency variance, no thread overhead;
* thread pool — the BLAS substrate releases the GIL inside kernels, so
  independent feeds genuinely overlap on multicore for kernel-bound
  workloads.

Every feed set gets its own arena and its own
:class:`~repro.ir.interpreter.ExecutionReport`, so results and accounting
are identical to running the plan once per feed set (order included).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..errors import GraphError
from ..ir.interpreter import ExecutionReport
from .plan import Plan

FeedSet = Sequence[object] | Mapping[object, object]


@dataclasses.dataclass
class BatchResult:
    """Outputs and per-feed reports of one batched execution."""

    outputs: list[list[np.ndarray]]
    reports: list[ExecutionReport]

    def __len__(self) -> int:
        return len(self.outputs)

    @property
    def total_flops(self) -> int:
        return sum(r.total_flops for r in self.reports)

    def first_outputs(self) -> list[np.ndarray]:
        """Column of each feed set's first graph output."""
        return [outs[0] for outs in self.outputs]


def execute_batch(
    plan: Plan,
    feed_sets: Sequence[FeedSet],
    *,
    workers: int | None = None,
    record: bool = False,
) -> BatchResult:
    """Run ``plan`` over every feed set in ``feed_sets``.

    ``workers=None``/``0``/``1`` runs sequentially; ``workers=k`` uses a
    thread pool of ``k`` threads.  ``record`` defaults to False — serving
    workloads usually don't want per-request kernel accounting; switch it
    on for parity checks and experiments.
    """
    if workers is not None and workers < 0:
        raise GraphError(f"workers must be >= 0, got {workers}")
    feed_sets = list(feed_sets)

    def one(feeds: FeedSet) -> tuple[list[np.ndarray], ExecutionReport]:
        return plan.execute(feeds, record=record)

    if workers in (None, 0, 1) or len(feed_sets) <= 1:
        results = [one(feeds) for feeds in feed_sets]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(one, feed_sets))
    return BatchResult(
        outputs=[outs for outs, _ in results],
        reports=[rep for _, rep in results],
    )
