"""Request coalescing: independent submissions → shared-memory feed waves.

The sharded runtime is fastest when it is handed *many feeds at once* —
``ShardPool.run`` amortizes one pipe round-trip per worker over a whole
ring of entries, and even the in-process batch path amortizes the
executor hop.  Independent callers don't arrive as batches, though; they
arrive one ``submit`` at a time.  The :class:`Coalescer` closes that
gap:

* every request lands in a per-key queue — the key carries the plan
  identity and the feed shapes/dtypes, so only *compatible* requests
  (same compiled function, same signature, same tenant session) ever
  share a wave;
* a queue flushes when it reaches ``max_wave`` requests (occupancy
  flush) or when its oldest request has waited ``max_delay`` seconds
  (deadline flush — the knob that bounds the latency cost of batching);
* a flush dispatches *one* wave through the supplied async ``dispatch``
  callable and fans the per-request results back out to each caller's
  future.  Waves of the same key serialize (a :class:`ShardPool` serves
  one run at a time); different keys dispatch concurrently.

Cancellation is first-class: a request whose future is cancelled while
queued is dropped at flush time (and again at dispatch time, after the
per-key serialization wait) — it neither occupies wave slots nor
receives results.

Deadlines are first-class too: a request queued with ``expires_at``
pulls the flush timer forward so its wave dispatches **no later than
the earliest member deadline**, and a member whose deadline has already
passed at flush (or after the per-key serialization wait) resolves with
:class:`~repro.serve.admission.ServeDeadlineError` without poisoning
the rest of the wave — the survivors still dispatch and get results.
"""

from __future__ import annotations

import asyncio
import dataclasses
from collections import defaultdict
from collections.abc import Callable, Hashable

from .admission import ServeDeadlineError

__all__ = ["CoalesceConfig", "Coalescer"]


@dataclasses.dataclass(frozen=True)
class CoalesceConfig:
    """Wave-formation knobs.

    Attributes
    ----------
    max_wave:
        Flush a queue the moment it holds this many requests.  Bounded
        above only by what the dispatch target digests well (a
        :class:`~repro.runtime.ShardPool` takes any size and chunks it
        into rings itself).
    max_delay:
        Deadline flush: the longest a queued request may wait for
        companions, in seconds.  This is the direct latency price of
        coalescing — p50 under light load sits near ``max_delay``,
        under heavy load near the wave service time.
    """

    max_wave: int = 8
    max_delay: float = 0.002

    def validate(self) -> None:
        if not isinstance(self.max_wave, int) or self.max_wave < 1:
            raise ValueError(
                f"max_wave must be an int >= 1, got {self.max_wave!r}"
            )
        if not (self.max_delay >= 0.0):
            raise ValueError(
                f"max_delay must be >= 0, got {self.max_delay!r}"
            )


@dataclasses.dataclass
class _Queued:
    """One request parked in a wave queue."""

    item: object
    future: asyncio.Future
    enqueued_at: float
    #: Absolute ``loop.time()`` after which the request must resolve
    #: with :class:`ServeDeadlineError` instead of dispatching.
    expires_at: float | None = None


class Coalescer:
    """Per-key request queues flushed into dispatchable waves.

    Parameters
    ----------
    dispatch:
        ``async dispatch(key, items) -> sequence of results`` — executes
        one wave and returns per-item results in order.  An exception
        fails every request of the wave (requests are independent
        retries for the caller, not for the wave).
    config:
        :class:`CoalesceConfig` flush thresholds.
    metrics:
        Optional :class:`~repro.serve.metrics.ServeMetrics`; receives
        wave occupancy, queue-wait latencies and the wave counter.
    """

    def __init__(
        self,
        dispatch: Callable,
        *,
        config: CoalesceConfig | None = None,
        metrics=None,
    ) -> None:
        self.config = config if config is not None else CoalesceConfig()
        self.config.validate()
        self._dispatch = dispatch
        self.metrics = metrics
        self._queues: dict[Hashable, list[_Queued]] = {}
        self._timers: dict[Hashable, asyncio.TimerHandle] = {}
        #: Absolute fire time of each armed timer, so a member with an
        #: earlier deadline can pull the flush forward.
        self._timer_when: dict[Hashable, float] = {}
        #: Serializes waves of one key (one ShardPool serves one run at
        #: a time); created lazily so idle keys cost nothing.
        self._locks: "defaultdict[Hashable, asyncio.Lock]" = defaultdict(
            asyncio.Lock
        )
        #: Live wave tasks — strong references (the loop keeps only weak
        #: ones) and the thing ``drain`` awaits.
        self._tasks: set[asyncio.Task] = set()

    # -- introspection -----------------------------------------------------------

    def pending(self, key: Hashable | None = None) -> int:
        """Queued-but-not-yet-flushed requests (for one key or all)."""
        if key is not None:
            return len(self._queues.get(key, ()))
        return sum(len(q) for q in self._queues.values())

    @property
    def inflight_waves(self) -> int:
        return len(self._tasks)

    # -- the submit/flush cycle --------------------------------------------------

    def submit(self, key: Hashable, item: object, *,
               expires_at: float | None = None) -> asyncio.Future:
        """Queue ``item`` under ``key``; the future resolves to its result.

        Must be called on the event loop.  Flushes immediately at
        ``max_wave``; otherwise the queue's first request arms the
        delay timer, and any request's ``expires_at`` (absolute
        ``loop.time()``) pulls the timer forward so the wave flushes no
        later than its earliest member deadline.
        """
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        queue = self._queues.setdefault(key, [])
        queue.append(_Queued(item, fut, loop.time(), expires_at))
        if len(queue) >= self.config.max_wave:
            self.flush(key)
            return fut
        fire_at = queue[0].enqueued_at + self.config.max_delay
        if expires_at is not None:
            fire_at = min(fire_at, expires_at)
        current = self._timer_when.get(key)
        if current is None or fire_at < current:
            old = self._timers.pop(key, None)
            if old is not None:
                old.cancel()
            self._timers[key] = loop.call_at(fire_at, self.flush, key)
            self._timer_when[key] = fire_at
        return fut

    def _expire(self, q: _Queued) -> None:
        q.future.set_exception(ServeDeadlineError(
            "request expired in the coalescer before its wave dispatched"
        ))
        if self.metrics is not None:
            self.metrics.deadline_expired += 1

    def flush(self, key: Hashable | None = None) -> None:
        """Dispatch the queued wave for ``key`` now (all keys if None)."""
        if key is None:
            for k in list(self._queues):
                self.flush(k)
            return
        timer = self._timers.pop(key, None)
        self._timer_when.pop(key, None)
        if timer is not None:
            timer.cancel()
        batch = self._queues.pop(key, None)
        if not batch:
            return
        now = asyncio.get_running_loop().time()
        live = []
        for q in batch:
            if q.future.done():
                continue
            if q.expires_at is not None and now >= q.expires_at:
                self._expire(q)  # resolved alone; the wave stays clean
            else:
                live.append(q)
        if not live:
            return
        task = asyncio.get_running_loop().create_task(
            self._run_wave(key, live)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_wave(self, key: Hashable, batch: list[_Queued]) -> None:
        async with self._locks[key]:
            # Re-filter after the serialization wait: a request can be
            # cancelled — or expire — between flush and the previous
            # wave of its key finishing.
            now = asyncio.get_running_loop().time()
            live = []
            cancelled = 0
            for q in batch:
                if q.future.done():
                    cancelled += 1
                elif q.expires_at is not None and now >= q.expires_at:
                    self._expire(q)
                else:
                    live.append(q)
            if self.metrics is not None:
                self.metrics.cancelled += cancelled
            if not live:
                return
            if self.metrics is not None:
                self.metrics.waves += 1
                self.metrics.wave_occupancy.record(len(live))
                for q in live:
                    self.metrics.queue_wait.record(now - q.enqueued_at)
            try:
                results = await self._dispatch(key, [q.item for q in live])
            except asyncio.CancelledError:
                for q in live:
                    q.future.cancel()
                raise
            except Exception as exc:  # noqa: BLE001 - fanned out to callers
                for q in live:
                    if not q.future.done():
                        q.future.set_exception(exc)
                return
            results = list(results)
            if len(results) != len(live):  # pragma: no cover - dispatch bug
                exc = RuntimeError(
                    f"dispatch returned {len(results)} results for a wave "
                    f"of {len(live)}"
                )
                for q in live:
                    if not q.future.done():
                        q.future.set_exception(exc)
                return
            for q, result in zip(live, results):
                if not q.future.done():
                    q.future.set_result(result)

    async def drain(self) -> None:
        """Flush every queue and wait for all in-flight waves to finish."""
        self.flush()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
            # A finishing wave may have been followed by late flushes.
            self.flush()
