"""Dtype handling.

Both TensorFlow and PyTorch default to single precision (the paper's
footnote 3); the simulated frameworks follow suit.  Only float32 and
float64 are supported — the BLAS substrate has no other real kernels.
"""

from __future__ import annotations

import numpy as np

from ..config import config
from ..errors import DTypeError

#: Mapping of accepted dtype spellings to canonical numpy dtypes.
_ALIASES: dict[str, np.dtype] = {
    "float32": np.dtype(np.float32),
    "f4": np.dtype(np.float32),
    "single": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
    "f8": np.dtype(np.float64),
    "double": np.dtype(np.float64),
}


def DEFAULT_DTYPE() -> np.dtype:
    """The process-wide default dtype (float32 unless reconfigured)."""
    return np.dtype(config.default_dtype)


def normalize_dtype(dtype: object | None) -> np.dtype:
    """Canonicalize a dtype spec; ``None`` means the configured default.

    Raises :class:`DTypeError` for anything the kernel layer cannot run.
    """
    if dtype is None:
        return DEFAULT_DTYPE()
    if isinstance(dtype, str):
        try:
            return _ALIASES[dtype]
        except KeyError:
            raise DTypeError(f"unsupported dtype {dtype!r}") from None
    d = np.dtype(dtype)  # may raise TypeError for garbage — let it surface
    if d not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise DTypeError(f"unsupported dtype {d}; only float32/float64 have kernels")
    return d


def result_dtype(*dtypes: np.dtype) -> np.dtype:
    """Common dtype of operands; mixing f32 and f64 is an error (no silent
    promotion — it would silently double the measured FLOP cost)."""
    unique = {np.dtype(d) for d in dtypes}
    if len(unique) != 1:
        raise DTypeError(f"mixed operand dtypes: {sorted(str(d) for d in unique)}")
    return next(iter(unique))
