"""Level-2 BLAS wrappers: matrix-vector operations."""

from __future__ import annotations

import numpy as np
from scipy.linalg import blas as _blas

from ..errors import KernelError
from .validation import (
    as_ndarray,
    check_matvec_shapes,
    check_same_length,
    require_same_dtype,
    require_square,
    require_vector,
)

_GEMV = {np.dtype(np.float32): _blas.sgemv, np.dtype(np.float64): _blas.dgemv}
_GER = {np.dtype(np.float32): _blas.sger, np.dtype(np.float64): _blas.dger}
_SYMV = {np.dtype(np.float32): _blas.ssymv, np.dtype(np.float64): _blas.dsymv}
_TRMV = {np.dtype(np.float32): _blas.strmv, np.dtype(np.float64): _blas.dtrmv}
_TRSV = {np.dtype(np.float32): _blas.strsv, np.dtype(np.float64): _blas.dtrsv}


def _routine(table: dict, dtype: np.dtype, name: str):
    try:
        return table[np.dtype(dtype)]
    except KeyError:  # pragma: no cover
        raise KernelError(f"no {name} kernel for dtype {dtype}") from None


def gemv(
    a: np.ndarray,
    x: np.ndarray,
    *,
    alpha: float = 1.0,
    trans: bool = False,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """GEMV: return ``alpha * op(A) x`` where ``op`` is identity or transpose.

    Cost: 2mn FLOPs.  The ``trans`` flag lets callers compute ``Aᵀx`` without
    materializing the transpose — the trick the paper's right-to-left chain
    evaluation relies on.

    ``out`` is the destination-aware mode: the result vector is written into
    the caller's contiguous 1-D buffer (BLAS's ``y`` argument with
    ``beta=0``, ``overwrite_y=1``) and that buffer is returned — no
    allocation.  Results are bit-identical to the allocating path (same
    routine, same accumulation).
    """
    a = as_ndarray(a, "a")
    x = as_ndarray(x, "x")
    require_same_dtype((a, "a"), (x, "x"))
    if trans:
        # op(A) x with op = T: validate against A's rows.
        require_vector(x, "x")
        if a.ndim != 2 or a.shape[0] != x.shape[0]:
            from ..errors import ShapeError

            raise ShapeError(
                f"gemv(trans): dimensions disagree: a is {a.shape}, x is {x.shape}"
            )
    else:
        check_matvec_shapes(a, x)
    fn = _routine(_GEMV, a.dtype, "gemv")
    if out is None:
        return fn(a.dtype.type(alpha), a, x, trans=1 if trans else 0)
    result_len = a.shape[1] if trans else a.shape[0]
    if out.ndim != 1 or out.shape[0] != result_len:
        from ..errors import ShapeError

        raise ShapeError(
            f"gemv: out has shape {out.shape}, result is ({result_len},)"
        )
    if out.dtype != a.dtype:
        raise KernelError(
            f"gemv: out dtype {out.dtype} does not match operands ({a.dtype})"
        )
    if not out.flags.c_contiguous:
        raise KernelError("gemv: out must be a contiguous vector")
    return fn(
        a.dtype.type(alpha),
        a,
        x,
        beta=a.dtype.type(0.0),
        y=out,
        overwrite_y=1,
        trans=1 if trans else 0,
    )


def ger(x: np.ndarray, y: np.ndarray, *, alpha: float = 1.0) -> np.ndarray:
    """GER: rank-1 update; return the outer product ``alpha * x yᵀ`` (2mn FLOPs)."""
    x = require_vector(as_ndarray(x, "x"), "x")
    y = require_vector(as_ndarray(y, "y"), "y")
    require_same_dtype((x, "x"), (y, "y"))
    fn = _routine(_GER, x.dtype, "ger")
    return fn(x.dtype.type(alpha), x, y)


def symv(a: np.ndarray, x: np.ndarray, *, alpha: float = 1.0, lower: bool = True) -> np.ndarray:
    """SYMV: ``alpha * A x`` with symmetric ``A``; only one triangle is read (2n² FLOPs)."""
    a = require_square(as_ndarray(a, "a"), "a")
    x = as_ndarray(x, "x")
    check_matvec_shapes(a, x)
    require_same_dtype((a, "a"), (x, "x"))
    fn = _routine(_SYMV, a.dtype, "symv")
    return fn(a.dtype.type(alpha), a, x, lower=1 if lower else 0)


def trmv(
    a: np.ndarray,
    x: np.ndarray,
    *,
    lower: bool = True,
    trans: bool = False,
    unit_diag: bool = False,
) -> np.ndarray:
    """TRMV: ``op(A) x`` with triangular ``A`` (~n² FLOPs, half of GEMV)."""
    a = require_square(as_ndarray(a, "a"), "a")
    x = as_ndarray(x, "x")
    check_matvec_shapes(a, x)
    require_same_dtype((a, "a"), (x, "x"))
    fn = _routine(_TRMV, a.dtype, "trmv")
    return fn(
        a,
        x.copy(),
        lower=1 if lower else 0,
        trans=1 if trans else 0,
        diag=1 if unit_diag else 0,
        overwrite_x=True,
    )


def trsv(
    a: np.ndarray,
    b: np.ndarray,
    *,
    lower: bool = True,
    trans: bool = False,
    unit_diag: bool = False,
) -> np.ndarray:
    """TRSV: solve ``op(A) x = b`` with triangular ``A`` (~n² FLOPs)."""
    a = require_square(as_ndarray(a, "a"), "a")
    b = as_ndarray(b, "b")
    check_same_length(np.empty(a.shape[0], dtype=a.dtype), b)
    require_same_dtype((a, "a"), (b, "b"))
    fn = _routine(_TRSV, a.dtype, "trsv")
    return fn(
        a,
        b.copy(),
        lower=1 if lower else 0,
        trans=1 if trans else 0,
        diag=1 if unit_diag else 0,
        overwrite_x=True,
    )
