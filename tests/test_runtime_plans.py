"""Parity and behaviour of the compiled runtime (repro.runtime).

The acceptance contract: ``Plan.execute`` must produce **bit-identical**
outputs to the reference ``Interpreter`` in **all four mode combinations**
(fusion on/off × arena preallocated/per-call) — on raw traced graphs,
default-optimized graphs and aware-optimized graphs alike, across the
expression shapes the existing experiment workloads use.  The report is
equal field-for-field (kernel call list, FLOPs, peak bytes) with fusion
off; with fusion on the call list uses the documented combined fused-call
representation while total FLOPs and peak/live bytes stay equal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frameworks import tfsim
from repro.ir import Interpreter, trace
from repro.passes import aware_pipeline, default_pipeline
from repro.runtime import compile_plan
from repro.tensor import random_general

# -- the workload suite -------------------------------------------------------
# Keys refer to the conftest ``operands`` bundle; expressions mirror the
# paper experiments (CSE table, chains, Table IV structured operands,
# algebraic blocks, partial access).

CASES = {
    "gram_paren": (lambda a, b: (a.T @ b).T @ (a.T @ b), ["A", "B"]),
    "gram_noparen": (lambda a, b: (a.T @ b).T @ a.T @ b, ["A", "B"]),
    "s_plus_s": (lambda a, b: a.T @ b + a.T @ b, ["A", "B"]),
    "chain_hhx": (lambda h, x: h.T @ h @ x, ["H", "x"]),
    "chain4": (lambda h, x, y: h.T @ y @ x.T @ h, ["H", "x", "y"]),
    "syrk_gram": (lambda a: a @ a.T, ["A"]),
    "trmm": (lambda l, b: l @ b, ["L", "B"]),
    "diag": (lambda d, b: d @ b, ["D", "B"]),
    "tridiag_prop": (lambda t, b: t @ b, ["T", "B"]),
    "tridiag_op": (
        lambda t, b: tfsim.linalg.tridiagonal_matmul(t, b), ["T", "B"]
    ),
    "symm": (lambda s, b: s @ b, ["S", "B"]),
    "ortho": (lambda q, x: q.T @ q @ x, ["Q", "x"]),
    "elementwise": (lambda a, b, c: 2.0 * a + b - (-c) * 0.5, ["A", "B", "C"]),
    "dot": (lambda x, y: x.T @ y, ["x", "y"]),
    "gemv": (lambda a, x: a @ x, ["A", "x"]),
    "row_gemv": (lambda a, x: x.T @ a, ["A", "x"]),
    "slice_sum": (lambda a, b: (a + b)[2, 2], ["A", "B"]),
    "slice_prod": (lambda a, b: a[2, :] @ b[:, 2], ["A", "B"]),
    "slice_block": (lambda a: a[2:10, 4:20], ["A"]),
    "concat": (lambda a, b: tfsim.concat([a, b], axis=1) @ tfsim.concat(
        [a, b], axis=0), ["A", "B"]),
    "multi_output": (lambda a, b: (a @ b, a + b, a.T @ b), ["A", "B"]),
    "unused_input": (lambda a, b: a @ a, ["A", "B"]),
}

PIPELINES = {
    "raw": None,
    "default": default_pipeline,
    "aware": aware_pipeline,
}


def _graphs(case, operands):
    fn, keys = CASES[case]
    args = [operands[k] for k in keys]
    graph = trace(fn, args)
    feeds = [a.data for a in args]
    return graph, feeds


#: The four execution-mode combinations of the acceptance contract.
MODES = {
    "plain": (False, False),
    "fused": (True, False),
    "arena": (False, True),
    "fused+arena": (True, True),
}


def assert_parity(graph, feeds, *, fusion=False, use_arena=False):
    """Interpreter vs compiled plan: bit-identical outputs; report equal
    field-for-field (fusion off) or FLOP-total/peak-bytes-equal (fusion
    on, combined fused-call records)."""
    outs_i, rep_i = Interpreter(record=True).run(graph, feeds)
    plan = compile_plan(graph, fusion=fusion)
    arena = plan.new_arena() if use_arena else None
    outs_p, rep_p = plan.execute(feeds, arena=arena)
    assert len(outs_i) == len(outs_p)
    for oi, op_ in zip(outs_i, outs_p):
        assert oi.shape == op_.shape
        assert oi.dtype == op_.dtype
        assert oi.tobytes() == op_.tobytes()
    if fusion:
        # Documented fused representation: combined KernelCall records;
        # FLOP totals and modelled memory are preserved exactly.
        assert rep_i.total_flops == rep_p.total_flops
        assert rep_i.peak_bytes == rep_p.peak_bytes
        assert rep_i.live_bytes == rep_p.live_bytes
        assert len(rep_p.calls) <= len(rep_i.calls)
    else:
        assert rep_i.calls == rep_p.calls
        assert rep_i.total_flops == rep_p.total_flops
        assert rep_i.peak_bytes == rep_p.peak_bytes
        assert rep_i.live_bytes == rep_p.live_bytes
    # record=False must not change the numerics; a reused arena must not
    # change them either (buffers are fully rewritten).
    outs_q, rep_q = plan.execute(feeds, record=False, arena=arena)
    assert all(a.tobytes() == b.tobytes() for a, b in zip(outs_i, outs_q))
    assert rep_q.calls == [] and rep_q.peak_bytes == 0
    return plan


@pytest.mark.parametrize("mode", MODES, ids=list(MODES))
@pytest.mark.parametrize("pipe", PIPELINES, ids=list(PIPELINES))
@pytest.mark.parametrize("case", CASES, ids=list(CASES))
def test_plan_matches_interpreter(case, pipe, mode, operands):
    graph, feeds = _graphs(case, operands)
    factory = PIPELINES[pipe]
    if factory is not None:
        graph = factory().run(graph)
    fusion, use_arena = MODES[mode]
    assert_parity(graph, feeds, fusion=fusion, use_arena=use_arena)


@pytest.mark.parametrize("mode", MODES, ids=list(MODES))
def test_loop_parity(mode, operands):
    """fori_loop compiles into a nested sub-plan with identical accounting."""
    a, b = operands["A"], operands["B"]

    def body(i, acc, aa, bb):
        return acc + aa @ bb

    def fn(p, q):
        return tfsim.fori_loop(3, body, tfsim.zeros(*p.shape), [p, q])

    graph = trace(fn, [a, b])
    feeds = [a.data, b.data]
    fusion, use_arena = MODES[mode]
    for factory in (None, default_pipeline, aware_pipeline):
        g = graph if factory is None else factory().run(graph)
        assert_parity(g, feeds, fusion=fusion, use_arena=use_arena)


# -- plan structure -----------------------------------------------------------


def test_slot_reuse_bounds_arena(operands):
    """A long dependent chain needs O(1) temp slots, not one per node."""
    def fn(a, b):
        out = a
        for _ in range(8):
            out = out @ b
        return out

    graph = trace(fn, [operands["A"], operands["B"]])
    plan = compile_plan(graph)
    # 2 input slots + result + at most one live temp at a time.
    assert plan.num_slots <= 4
    assert len(plan.instructions) == 8


def test_outputs_and_inputs_keep_their_slots(operands):
    """Graph outputs and inputs must never be freed into the reuse pool."""
    def fn(a, b):
        t = a @ b
        return t, t @ b, a

    graph = trace(fn, [operands["A"], operands["B"]])
    plan = compile_plan(graph)
    out_slots = set(plan.output_slots)
    input_slots = {p.slot for p in plan.inputs}
    for inst in plan.instructions:
        assert not (set(inst.free_slots) & out_slots)
        assert not (set(inst.free_slots) & input_slots)


def test_plan_flops_match_report(operands):
    graph, feeds = _graphs("gram_paren", operands)
    plan = assert_parity(graph, feeds)
    _, report = plan.execute(feeds)
    assert plan.flops == report.total_flops


def test_describe_lists_instructions(operands):
    graph, _ = _graphs("chain_hhx", operands)
    plan = compile_plan(graph)
    text = plan.describe()
    assert "instructions" in text
    assert "matmul" in text


def test_repeated_execution_is_stable(operands):
    """Executing one plan many times gives identical bytes every time."""
    graph, feeds = _graphs("gram_paren", operands)
    plan = compile_plan(default_pipeline().run(graph))
    first, _ = plan.execute(feeds)
    for _ in range(3):
        outs, _ = plan.execute(feeds)
        assert outs[0].tobytes() == first[0].tobytes()


def test_feed_binding_by_name_and_position(operands):
    a, b = operands["A"], operands["B"]
    graph = trace(lambda p, q: p @ q, [a, b])
    plan = compile_plan(graph)
    by_pos, _ = plan.execute([a.data, b.data])
    named = {p.name: arr for p, arr in zip(plan.inputs, [a.data, b.data])}
    by_name, _ = plan.execute(named)
    assert by_pos[0].tobytes() == by_name[0].tobytes()


def test_feed_errors(operands):
    from repro.errors import GraphError

    a, b = operands["A"], operands["B"]
    graph = trace(lambda p, q: p @ q, [a, b])
    plan = compile_plan(graph)
    with pytest.raises(GraphError):
        plan.execute([a.data])  # arity
    with pytest.raises(GraphError):
        plan.execute({"nope": a.data, plan.inputs[1].name: b.data})
    with pytest.raises(GraphError):
        plan.execute([a.data, random_general(5, seed=3).data])  # shape


def test_fold_constants_precomputes_const_subdags():
    # Built via the IR builder: tracing would eagerly evaluate a
    # Tensor-Tensor product before it ever reached the graph.
    from repro.ir import Graph, builder

    c1 = random_general(6, seed=21)
    c2 = random_general(6, seed=22)
    x = random_general(6, seed=23)
    x_in = builder.input_node((6, 6), x.dtype, name="x")
    const_prod = builder.matmul(builder.const(c1.data), builder.const(c2.data))
    graph = Graph([builder.matmul(x_in, const_prod)], inputs=[x_in])
    eager = compile_plan(graph)
    folded = compile_plan(graph, fold_constants=True)
    # Folding removes the const GEMM from the executed program...
    assert len(folded.instructions) < len(eager.instructions)
    outs_e, rep_e = eager.execute([x.data])
    outs_f, rep_f = folded.execute([x.data])
    # ...keeps the numerics, and drops the folded kernel from accounting.
    np.testing.assert_allclose(outs_f[0], outs_e[0], rtol=1e-5)
    assert len(rep_f.calls) < len(rep_e.calls)


# -- decorator-level parity ---------------------------------------------------


def test_compiled_function_call_matches_interpret(operands):
    @tfsim.function(aware=True)
    def f(h, x):
        return tfsim.transpose(h) @ h @ x

    h, x = operands["H"], operands["x"]
    via_plan = f(h, x)
    report_plan = f.last_report
    via_interp = f.interpret(h, x)
    report_interp = f.last_report
    assert via_plan.numpy().tobytes() == via_interp.numpy().tobytes()
    assert report_plan.calls == report_interp.calls
    assert report_plan.peak_bytes == report_interp.peak_bytes
