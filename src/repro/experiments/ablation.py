"""Ablation (extension) — default vs linear-algebra-aware pipelines.

Not a paper table: this experiment answers the paper's implicit question —
*how much would the recommended optimizations actually buy?* — by running
each of the paper's negative-finding expressions through the same simulated
framework twice: once with the default (TF/PyT-faithful) pipeline and once
with the aware pipeline (chain reordering + property dispatch +
distributivity + partial access).
"""

from __future__ import annotations

from ..bench.registry import register_experiment
from ..bench.reporting import Cell, ExperimentTable
from ..frameworks import tfsim
from ._measure import time_compiled
from .sizes import experiment_size
from .workloads import Workloads


def _cases(n: int):
    """(label, function builder, args builder) per ablation case."""

    def chain_fn(aware: bool):
        @tfsim.function(aware=aware)
        def fn(h, x):
            return tfsim.transpose(h) @ h @ x

        return fn

    def mixed_fn(aware: bool):
        @tfsim.function(aware=aware)
        def fn(h, x, y):
            return tfsim.transpose(h) @ y @ tfsim.transpose(x) @ h

        return fn

    def trmm_fn(aware: bool):
        @tfsim.function(aware=aware)
        def fn(l, b):
            return l @ b

        return fn

    def syrk_fn(aware: bool):
        @tfsim.function(aware=aware)
        def fn(a):
            return a @ tfsim.transpose(a)

        return fn

    def tridiag_fn(aware: bool):
        @tfsim.function(aware=aware)
        def fn(t, b):
            return t @ b

        return fn

    def diag_fn(aware: bool):
        @tfsim.function(aware=aware)
        def fn(d, b):
            return d @ b

        return fn

    def eq9_fn(aware: bool):
        @tfsim.function(aware=aware)
        def fn(a, b, c):
            return a @ b + a @ c

        return fn

    def eq10_fn(aware: bool):
        @tfsim.function(aware=aware)
        def fn(a, h, x):
            return (a - tfsim.transpose(h) @ h) @ x

        return fn

    def partial_fn(aware: bool):
        @tfsim.function(aware=aware)
        def fn(a, b):
            return (a @ b)[2, 2]

        return fn

    def ortho_fn(aware: bool):
        @tfsim.function(aware=aware)
        def fn(q, a):
            return tfsim.transpose(q) @ q @ a

        return fn

    w = Workloads(n)
    return [
        ("chain HᵀHx", chain_fn, [w.general(0), w.vector(0)]),
        ("chain HᵀyxᵀH", mixed_fn, [w.general(0), w.vector(0), w.vector(1)]),
        ("triangular LB", trmm_fn, [w.lower_triangular(), w.general(1)]),
        ("gram AAᵀ", syrk_fn, [w.general(0)]),
        ("tridiagonal TB", tridiag_fn, [w.tridiagonal(), w.general(1)]),
        ("diagonal DB", diag_fn, [w.diagonal(), w.general(1)]),
        ("distributivity AB+AC", eq9_fn, [w.general(0), w.general(1), w.general(2)]),
        ("distributivity (A−HᵀH)x", eq10_fn, [w.general(0), w.general(3), w.vector(0)]),
        ("partial (AB)[2,2]", partial_fn, [w.general(0), w.general(1)]),
        ("orthogonal QᵀQA", ortho_fn, [w.orthogonal(), w.general(1)]),
    ]


@register_experiment(
    "ablation",
    "extension",
    "default vs aware optimization pipeline on every negative-finding expression",
)
def run(n: int | None = None, repetitions: int | None = None) -> ExperimentTable:
    n = experiment_size(n)
    table = ExperimentTable(
        title=f"Ablation: default vs aware pipeline (tfsim), n = {n}",
        columns=["default (s)", "aware (s)", "speedup", "FLOPs default", "FLOPs aware"],
    )
    for label, builder, args in _cases(n):
        default_fn = builder(False)
        aware_fn = builder(True)
        td = time_compiled(default_fn, args, label="default",
                           repetitions=repetitions)
        ta = time_compiled(aware_fn, args, label="aware",
                           repetitions=repetitions)
        fd = default_fn.last_report.total_flops
        fa = aware_fn.last_report.total_flops
        table.add_row(
            label,
            default__s_=td.best,
            aware__s_=ta.best,
            speedup=Cell(text=f"{td.best / max(ta.best, 1e-9):.1f}x"),
            FLOPs_default=Cell(text=f"{fd:,}"),
            FLOPs_aware=Cell(text=f"{fa:,}"),
        )
    table.notes.append(
        "aware pipeline = default + chain reordering, property dispatch, "
        "distributivity, partial-access (repro.passes.aware_pipeline)"
    )
    return table
