"""Tests for structured-matrix kernels and LAPACK wrappers."""

import numpy as np
import pytest

from repro.errors import KernelError, ShapeError
from repro.kernels import lapack, special


def _mat(rng, m, n, dtype=np.float32):
    return (rng.random((m, n)) - 0.5).astype(dtype)


class TestTridiagonal:
    def _tridiag(self, rng, n):
        dl = (rng.random(n - 1) - 0.5).astype(np.float32)
        d = (rng.random(n) - 0.5).astype(np.float32)
        du = (rng.random(n - 1) - 0.5).astype(np.float32)
        return dl, d, du

    def test_from_bands_roundtrip(self, rng):
        dl, d, du = self._tridiag(rng, 9)
        t = special.tridiag_from_bands(dl, d, du)
        dl2, d2, du2 = special.bands_from_tridiag(t)
        assert np.allclose(dl, dl2) and np.allclose(d, d2) and np.allclose(du, du2)

    def test_from_bands_structure(self, rng):
        dl, d, du = self._tridiag(rng, 7)
        t = special.tridiag_from_bands(dl, d, du)
        band = np.tril(np.triu(t, -1), 1)
        assert np.allclose(t, band)

    def test_matmul_dense_input(self, rng):
        dl, d, du = self._tridiag(rng, 12)
        t = special.tridiag_from_bands(dl, d, du)
        b = _mat(rng, 12, 8)
        assert np.allclose(special.tridiagonal_matmul(t, b), t @ b, atol=1e-5)

    def test_matmul_band_input(self, rng):
        dl, d, du = self._tridiag(rng, 12)
        t = special.tridiag_from_bands(dl, d, du)
        b = _mat(rng, 12, 8)
        out = special.tridiagonal_matmul((dl, d, du), b)
        assert np.allclose(out, t @ b, atol=1e-5)

    def test_scal_loop_matches_vectorized(self, rng):
        dl, d, du = self._tridiag(rng, 15)
        t = special.tridiag_from_bands(dl, d, du)
        b = _mat(rng, 15, 6)
        assert np.allclose(
            special.tridiagonal_matmul_scal_loop(t, b),
            special.tridiagonal_matmul(t, b),
            atol=1e-5,
        )

    def test_matmul_n2_case(self, rng):
        """n = 2 has empty-ish bands on one side after slicing."""
        dl, d, du = self._tridiag(rng, 2)
        t = special.tridiag_from_bands(dl, d, du)
        b = _mat(rng, 2, 3)
        assert np.allclose(special.tridiagonal_matmul(t, b), t @ b, atol=1e-6)

    def test_band_length_mismatch(self, rng):
        with pytest.raises(ShapeError):
            special.tridiag_from_bands(np.ones(3), np.ones(3), np.ones(2))

    def test_shape_mismatch(self, rng):
        t = special.tridiag_from_bands(np.ones(4), np.ones(5), np.ones(4))
        with pytest.raises(ShapeError):
            special.tridiagonal_matmul(t, _mat(rng, 6, 2))


class TestDiagonal:
    def test_matmul_vector_diag(self, rng):
        d = (rng.random(10) - 0.5).astype(np.float32)
        b = _mat(rng, 10, 7)
        assert np.allclose(special.diag_matmul(d, b), np.diag(d) @ b, atol=1e-6)

    def test_matmul_dense_diag(self, rng):
        d = np.diag((rng.random(10) - 0.5).astype(np.float32))
        b = _mat(rng, 10, 7)
        assert np.allclose(special.diag_matmul(d, b), d @ b, atol=1e-6)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            special.diag_matmul(np.ones(4, dtype=np.float32), _mat(rng, 5, 2))


class TestBlockDiag:
    def test_two_blocks(self, rng):
        a1, a2 = _mat(rng, 6, 6), _mat(rng, 6, 6)
        b = _mat(rng, 12, 5)
        big = np.zeros((12, 12), dtype=np.float32)
        big[:6, :6], big[6:, 6:] = a1, a2
        assert np.allclose(
            special.block_diag_matmul([a1, a2], b), big @ b, atol=1e-5
        )

    def test_unequal_blocks(self, rng):
        a1, a2, a3 = _mat(rng, 3, 3), _mat(rng, 5, 5), _mat(rng, 2, 2)
        b = _mat(rng, 10, 4)
        big = np.zeros((10, 10), dtype=np.float32)
        big[:3, :3], big[3:8, 3:8], big[8:, 8:] = a1, a2, a3
        assert np.allclose(
            special.block_diag_matmul([a1, a2, a3], b), big @ b, atol=1e-5
        )

    def test_empty_blocks_rejected(self, rng):
        with pytest.raises(ShapeError):
            special.block_diag_matmul([], _mat(rng, 4, 4))

    def test_row_count_mismatch(self, rng):
        with pytest.raises(ShapeError):
            special.block_diag_matmul([_mat(rng, 3, 3)], _mat(rng, 4, 4))

    def test_nonsquare_block_rejected(self, rng):
        with pytest.raises(ShapeError):
            special.block_diag_matmul([_mat(rng, 3, 4)], _mat(rng, 3, 4))


class TestLapack:
    def _spd(self, rng, n, dtype=np.float32):
        a = (rng.random((n, n)) - 0.5).astype(np.float64)
        return (a @ a.T + n * np.eye(n)).astype(dtype)

    def test_potrf_lower(self, rng):
        a = self._spd(rng, 8)
        c = lapack.potrf(a, lower=True)
        assert np.allclose(c @ c.T, a, rtol=1e-3, atol=1e-3)
        assert np.allclose(c, np.tril(c))

    def test_potrf_upper(self, rng):
        a = self._spd(rng, 8)
        c = lapack.potrf(a, lower=False)
        assert np.allclose(c.T @ c, a, rtol=1e-3, atol=1e-3)

    def test_potrf_rejects_indefinite(self, rng):
        a = np.eye(5, dtype=np.float32)
        a[3, 3] = -1.0
        with pytest.raises(KernelError):
            lapack.potrf(a)

    def test_cholesky_solve(self, rng):
        a = self._spd(rng, 12, np.float64)
        b = rng.random(12)
        x = lapack.cholesky_solve(a, b)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_cholesky_solve_multiple_rhs(self, rng):
        a = self._spd(rng, 10, np.float64)
        b = rng.random((10, 3))
        x = lapack.cholesky_solve(a, b)
        assert x.shape == (10, 3)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_lu_solve(self, rng):
        a = (rng.random((9, 9)) + 2 * np.eye(9)).astype(np.float64)
        b = rng.random(9)
        x = lapack.lu_solve(a, b)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_lu_solve_matches_numpy(self, rng):
        a = (rng.random((7, 7)) + 2 * np.eye(7)).astype(np.float64)
        b = rng.random(7)
        assert np.allclose(lapack.lu_solve(a, b), np.linalg.solve(a, b), atol=1e-8)

    def test_getrf_singular_detected(self):
        with pytest.raises(KernelError):
            lapack.getrf(np.zeros((4, 4), dtype=np.float64))

    def test_shape_mismatch(self, rng):
        a = self._spd(rng, 6, np.float64)
        with pytest.raises(ShapeError):
            lapack.cholesky_solve(a, rng.random(7))
