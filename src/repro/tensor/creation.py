"""Tensor constructors with correct property annotations."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ShapeError
from ..kernels.special import tridiag_from_bands
from .dtypes import normalize_dtype
from .properties import Property
from .tensor import Tensor


def from_numpy(a: np.ndarray, *props: Property, detect: bool = False) -> Tensor:
    """Wrap an ndarray, optionally annotating or auto-detecting properties."""
    return Tensor(a, props, detect=detect)


def zeros(m: int, n: int | None = None, *, dtype: object | None = None) -> Tensor:
    """An m×n (or m×m) zero tensor, annotated ZERO."""
    n = m if n is None else n
    return Tensor(np.zeros((m, n), dtype=normalize_dtype(dtype)), {Property.ZERO})


def ones(m: int, n: int | None = None, *, dtype: object | None = None) -> Tensor:
    """An m×n (or m×m) all-ones tensor."""
    n = m if n is None else n
    return Tensor(np.ones((m, n), dtype=normalize_dtype(dtype)))


def eye(n: int, *, dtype: object | None = None) -> Tensor:
    """The n×n identity, annotated IDENTITY (hence diagonal, orthogonal, SPD)."""
    return Tensor(np.eye(n, dtype=normalize_dtype(dtype)), {Property.IDENTITY})


def diag(values: Sequence[float] | np.ndarray, *, dtype: object | None = None) -> Tensor:
    """A diagonal tensor from a vector of diagonal entries."""
    v = np.asarray(values, dtype=normalize_dtype(dtype)).ravel()
    return Tensor(np.diag(v), {Property.DIAGONAL})


def tridiag(
    dl: Sequence[float] | np.ndarray,
    d: Sequence[float] | np.ndarray,
    du: Sequence[float] | np.ndarray,
    *,
    dtype: object | None = None,
) -> Tensor:
    """A tridiagonal tensor from its three bands, annotated TRIDIAGONAL."""
    target = normalize_dtype(dtype)
    t = tridiag_from_bands(
        np.asarray(dl, dtype=target),
        np.asarray(d, dtype=target),
        np.asarray(du, dtype=target),
    )
    return Tensor(t, {Property.TRIDIAGONAL})


def block_diag(*blocks: Tensor | np.ndarray) -> Tensor:
    """A block-diagonal tensor from square blocks, annotated BLOCK_DIAGONAL.

    This is the explicit concatenation the paper's Experiment 4 performs so
    that the construction is visible to the computational graph.
    """
    if not blocks:
        raise ShapeError("block_diag needs at least one block")
    arrays = [b.data if isinstance(b, Tensor) else np.asarray(b) for b in blocks]
    for a in arrays:
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ShapeError(f"block_diag blocks must be square, got {a.shape}")
    n = sum(a.shape[0] for a in arrays)
    out = np.zeros((n, n), dtype=arrays[0].dtype)
    row = 0
    for a in arrays:
        k = a.shape[0]
        out[row : row + k, row : row + k] = a
        row += k
    props = {Property.BLOCK_DIAGONAL}
    if all(
        isinstance(b, Tensor) and Property.LOWER_TRIANGULAR in b.props for b in blocks
    ):
        props.add(Property.LOWER_TRIANGULAR)
    if all(
        isinstance(b, Tensor) and Property.UPPER_TRIANGULAR in b.props for b in blocks
    ):
        props.add(Property.UPPER_TRIANGULAR)
    if all(isinstance(b, Tensor) and Property.SYMMETRIC in b.props for b in blocks):
        props.add(Property.SYMMETRIC)
    return Tensor(out, props)


def concat(tensors: Sequence[Tensor], *, axis: int = 0) -> Tensor:
    """Concatenate tensors along rows (axis=0) or columns (axis=1)."""
    if not tensors:
        raise ShapeError("concat needs at least one tensor")
    if axis not in (0, 1):
        raise ShapeError(f"concat axis must be 0 or 1, got {axis}")
    arrays = [t.data if isinstance(t, Tensor) else np.asarray(t) for t in tensors]
    return Tensor(np.concatenate(arrays, axis=axis))
