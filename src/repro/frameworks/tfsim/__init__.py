"""tfsim — the TensorFlow stand-in.

Public API mirrors the TF surface the paper's benchmark code touches:

* ``tfsim.function`` — the ``@tf.function`` graph-mode decorator;
* ``tfsim.constant`` / ``eye`` / ``zeros`` / ``ones`` — tensor creation;
* ``tfsim.matmul`` / ``transpose`` / ``add`` / ``subtract`` / ``multiply``
  / ``negative`` / ``concat`` — eager-or-traced ops (the ``@`` operator
  works too);
* ``tfsim.linalg`` — ``matmul``, ``tridiagonal_matmul`` (the opt-in
  structured kernel of Experiment 3), ``matrix_transpose``;
* ``tfsim.fori_loop`` — the framework-specific loop construct (the paper:
  loops in Graph mode "have to be handled specially using framework
  specific constructs"); Python ``for`` loops simply unroll at trace time;
* ``tfsim.grappler`` — the graph optimizer (inspect pipelines & graphs).

Everything executes on the shared BLAS substrate; in Eager mode each op
runs immediately with no cross-op optimization, in Graph mode the traced
DAG goes through the Grappler-analogue pipeline first.
"""

from . import grappler
from . import linalg
from .eager import (
    add,
    concat,
    constant,
    eye,
    fori_loop,
    matmul,
    multiply,
    negative,
    ones,
    subtract,
    transpose,
    zeros,
)
from .function import function

__all__ = [
    "function",
    "constant",
    "eye",
    "zeros",
    "ones",
    "matmul",
    "transpose",
    "add",
    "subtract",
    "multiply",
    "negative",
    "concat",
    "fori_loop",
    "linalg",
    "grappler",
]
