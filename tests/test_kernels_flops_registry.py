"""Tests for the FLOP cost model and the property-driven kernel registry."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import flops
from repro.kernels.registry import (
    KernelRegistry,
    default_registry,
    select_matmul_kernel,
)
from repro.tensor.properties import Property, closure

GEN = closure({Property.GENERAL})


class TestFlopFormulas:
    def test_gemm_paper_example(self):
        # Paper Sec. III-B: GEMM of n=3000 squares costs 2n^3
        assert flops.flops_gemm(3000, 3000, 3000) == 2 * 3000**3

    def test_trmm_half_of_gemm(self):
        n, m = 128, 64
        assert flops.flops_trmm(n, m) * 2 == flops.flops_gemm(n, n, m)

    def test_syrk_half_of_gemm(self):
        n, k = 100, 80
        assert flops.flops_syrk(n, k) * 2 == flops.flops_gemm(n, k, n)

    def test_tridiag_paper_value(self):
        # Paper: "the overall computation requires only 6n^2 FLOPs"
        assert flops.flops_tridiag_matmul(3000, 3000) == 6 * 3000**2

    def test_diag_paper_value(self):
        # Paper: "the product DB requires only n^2 FLOPs"
        assert flops.flops_diag_matmul(3000, 3000) == 3000**2

    def test_gemv(self):
        assert flops.flops_gemv(10, 20) == 400

    def test_transpose_free(self):
        assert flops.flops_transpose(100, 200) == 0

    def test_kernel_flops_lookup(self):
        assert flops.kernel_flops("gemm", 2, 3, 4) == 48
        assert flops.kernel_flops("dot", 100) == 200

    def test_kernel_flops_unknown(self):
        with pytest.raises(KernelError):
            flops.kernel_flops("quantum_gemm", 2, 2, 2)

    def test_every_registered_formula_callable(self):
        dims = {
            "gemm": (4, 5, 6), "gemv": (4, 5), "ger": (4, 5), "dot": (9,),
            "axpy": (9,), "scal": (9,), "trmm": (4, 5), "trmv": (4,),
            "syrk": (4, 5), "symm": (4, 5), "trsm": (4, 5), "trsv": (4,),
            "tridiagonal_matmul": (4, 5), "diag_matmul": (4, 5),
            "add": (4, 5), "sub": (4, 5), "scale": (4, 5), "potrf": (6,),
            "getrf": (6,), "transpose": (4, 5),
        }
        assert set(dims) == set(flops.FLOP_FORMULAS)
        for name, d in dims.items():
            assert flops.kernel_flops(name, *d) >= 0


class TestRegistrySelection:
    def test_general_gets_gemm(self):
        assert select_matmul_kernel(GEN, GEN, 8, 8, 8).name == "gemm"

    def test_lower_triangular_gets_trmm(self):
        p = closure({Property.LOWER_TRIANGULAR})
        assert select_matmul_kernel(p, GEN, 8, 8, 8).name == "trmm"

    def test_upper_triangular_gets_trmm(self):
        p = closure({Property.UPPER_TRIANGULAR})
        assert select_matmul_kernel(p, GEN, 8, 8, 8).name == "trmm"

    def test_right_triangular_gets_trmm_right(self):
        p = closure({Property.LOWER_TRIANGULAR})
        assert select_matmul_kernel(GEN, p, 8, 8, 8).name == "trmm_right"

    def test_diagonal_beats_triangular(self):
        p = closure({Property.DIAGONAL})  # implies triangular
        assert select_matmul_kernel(p, GEN, 8, 8, 8).name == "diag_matmul"

    def test_tridiagonal_gets_banded(self):
        p = closure({Property.TRIDIAGONAL})
        assert select_matmul_kernel(p, GEN, 64, 64, 64).name == "tridiagonal_matmul"

    def test_identity_short_circuits(self):
        p = closure({Property.IDENTITY})
        assert select_matmul_kernel(p, GEN, 8, 8, 8).name == "identity"

    def test_identity_right(self):
        p = closure({Property.IDENTITY})
        assert select_matmul_kernel(GEN, p, 8, 8, 8).name == "identity_right"

    def test_zero_dominates_everything(self):
        p = closure({Property.ZERO})
        assert select_matmul_kernel(p, closure({Property.IDENTITY}), 8, 8, 8).name == "zero"

    def test_symmetric_gets_symm(self):
        p = closure({Property.SYMMETRIC})
        assert select_matmul_kernel(p, GEN, 8, 8, 8).name == "symm"

    def test_executors_are_correct(self, rng):
        """Every registered kernel's executor must agree with plain @ on
        data satisfying its property."""
        n = 10
        b = (rng.random((n, n)) - 0.5).astype(np.float32)
        cases = {
            "gemm": (rng.random((n, n)).astype(np.float32) - 0.5, GEN),
            "trmm": (np.tril(rng.random((n, n)).astype(np.float32)),
                     closure({Property.LOWER_TRIANGULAR})),
            "diag_matmul": (np.diag(rng.random(n).astype(np.float32)),
                            closure({Property.DIAGONAL})),
            "identity": (np.eye(n, dtype=np.float32), closure({Property.IDENTITY})),
            "zero": (np.zeros((n, n), dtype=np.float32), closure({Property.ZERO})),
            "symm": ((lambda s: (s + s.T) / 2)(rng.random((n, n)).astype(np.float32)),
                     closure({Property.SYMMETRIC})),
        }
        for name, (a, props) in cases.items():
            kernel = default_registry.get(name)
            out = kernel.execute(a, b, props, GEN)
            assert np.allclose(out, a @ b, atol=1e-4), name

    def test_get_unknown_kernel(self):
        with pytest.raises(KernelError):
            default_registry.get("nope")

    def test_custom_registration(self):
        reg = KernelRegistry()
        before = len(reg)
        from repro.kernels.registry import KernelInfo

        reg.register(
            KernelInfo(
                name="custom",
                description="test",
                flops=lambda m, k, n: 1,
                applicable=lambda pa, pb: False,
                execute=lambda a, b, pa, pb: a @ b,
            )
        )
        assert len(reg) == before + 1
        assert reg.get("custom").description == "test"

    def test_cheapest_wins(self):
        # diagonal (nm) < tridiagonal (6nm) < trmm (n^2 m): closure of
        # DIAGONAL makes all applicable; selection must pick diag.
        p = closure({Property.DIAGONAL})
        candidates = default_registry.candidates(p, GEN)
        names = {k.name for k in candidates}
        assert {"diag_matmul", "tridiagonal_matmul", "trmm", "gemm"} <= names
        assert default_registry.select(p, GEN, 50, 50, 50).name == "diag_matmul"
