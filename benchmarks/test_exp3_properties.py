"""Table IV — exploiting matrix properties.

Expected shape: the SciPy BLAS column beats the frameworks' matmul whenever
structure exists (TRMM/SYRK ≈ 0.5-0.6×, tridiagonal/diagonal scalings ≪);
framework matmul is blind to structure; TF's opt-in ``tridiagonal_matmul``
beats even the sequential SciPy SCAL loop.
"""

import pytest

from repro.experiments.scipy_reference import (
    diag_scale_reference,
    gemm_reference,
    syrk_reference,
    tridiag_scal_reference,
    trmm_reference,
)
from repro.frameworks import pytsim, tfsim


@pytest.fixture(scope="module")
def fns(dense, structured):
    a, b, _ = dense
    l, t, d = structured

    @tfsim.function
    def tf_mm(p, q):
        return p @ q

    @pytsim.jit.script
    def pyt_mm(p, q):
        return p @ q

    @tfsim.function
    def tf_gram(p):
        return p @ tfsim.transpose(p)

    @pytsim.jit.script
    def pyt_gram(p):
        return p @ p.T

    @tfsim.function
    def tf_tri_op(p, q):
        return tfsim.linalg.tridiagonal_matmul(p, q)

    for args in ((a, b), (l, b), (t, b), (d, b)):
        tf_mm.get_concrete(*args)
        pyt_mm.get_concrete(*args)
    tf_gram.get_concrete(a)
    pyt_gram.get_concrete(a)
    tf_tri_op.get_concrete(t, b)
    tf_tri_op.get_concrete(d, b)
    return tf_mm, pyt_mm, tf_gram, pyt_gram, tf_tri_op


@pytest.mark.benchmark(group="table4-AB-baseline")
class TestDenseBaseline:
    def test_scipy_gemm(self, benchmark, dense, w):
        a, b, _ = dense
        af, bf = w.fortran(a), w.fortran(b)
        benchmark(lambda: gemm_reference(af, bf))

    def test_tf_matmul(self, benchmark, dense, fns):
        a, b, _ = dense
        benchmark(lambda: fns[0](a, b))

    def test_pyt_matmul(self, benchmark, dense, fns):
        a, b, _ = dense
        benchmark(lambda: fns[1](a, b))


@pytest.mark.benchmark(group="table4-LB-triangular")
class TestTriangular:
    def test_scipy_trmm(self, benchmark, dense, structured, w):
        _, b, _ = dense
        l, _, _ = structured
        lf, bf = w.fortran(l), w.fortran(b)
        benchmark(lambda: trmm_reference(lf, bf))

    def test_tf_matmul(self, benchmark, dense, structured, fns):
        _, b, _ = dense
        l, _, _ = structured
        benchmark(lambda: fns[0](l, b))

    def test_pyt_matmul(self, benchmark, dense, structured, fns):
        _, b, _ = dense
        l, _, _ = structured
        benchmark(lambda: fns[1](l, b))


@pytest.mark.benchmark(group="table4-AAt-symmetric-output")
class TestGram:
    def test_scipy_syrk(self, benchmark, dense, w):
        a, _, _ = dense
        af = w.fortran(a)
        benchmark(lambda: syrk_reference(af))

    def test_tf_matmul(self, benchmark, dense, fns):
        a, _, _ = dense
        benchmark(lambda: fns[2](a))

    def test_pyt_matmul(self, benchmark, dense, fns):
        a, _, _ = dense
        benchmark(lambda: fns[3](a))


@pytest.mark.benchmark(group="table4-TB-tridiagonal")
class TestTridiagonal:
    def test_scipy_scal_loop(self, benchmark, dense, structured, w):
        _, b, _ = dense
        _, t, _ = structured
        tf_arr, bf = w.fortran(t), w.fortran(b)
        benchmark(lambda: tridiag_scal_reference(tf_arr, bf))

    def test_tf_matmul(self, benchmark, dense, structured, fns):
        _, b, _ = dense
        _, t, _ = structured
        benchmark(lambda: fns[0](t, b))

    def test_tf_tridiagonal_matmul(self, benchmark, dense, structured, fns):
        _, b, _ = dense
        _, t, _ = structured
        benchmark(lambda: fns[4](t, b))

    def test_pyt_matmul(self, benchmark, dense, structured, fns):
        _, b, _ = dense
        _, t, _ = structured
        benchmark(lambda: fns[1](t, b))


@pytest.mark.benchmark(group="table4-DB-diagonal")
class TestDiagonal:
    def test_scipy_diag_scale(self, benchmark, dense, structured, w):
        _, b, _ = dense
        _, _, d = structured
        df, bf = w.fortran(d), w.fortran(b)
        benchmark(lambda: diag_scale_reference(df, bf))

    def test_tf_matmul(self, benchmark, dense, structured, fns):
        _, b, _ = dense
        _, _, d = structured
        benchmark(lambda: fns[0](d, b))

    def test_tf_tridiagonal_matmul(self, benchmark, dense, structured, fns):
        _, b, _ = dense
        _, _, d = structured
        benchmark(lambda: fns[4](d, b))

    def test_pyt_matmul(self, benchmark, dense, structured, fns):
        _, b, _ = dense
        _, _, d = structured
        benchmark(lambda: fns[1](d, b))
