"""Image restoration by iterative backward projection (paper Fig. 1).

Run:  python examples/image_restoration.py [n] [iters]

The paper's introductory application (Tirer & Giryes 2018): the update

    y_{k+1} := Hᵀ y_k + (I − HᵀH) x

appears in an iterative restoration loop.  This example:

1. runs the loop with each of the paper's three variants and reports the
   per-iteration cost (variant 1 carries an O(n³) product — 40-80× slower);
2. feeds variant 1 to the derivation-graph engine, which *automatically*
   discovers variant 3 — what the paper argues frameworks should do;
3. checks that all variants converge to the same restored signal.

``H`` here is a synthetic blur operator (banded, diagonally dominant), the
observed signal ``x`` is a blurred noisy version of a ground-truth ramp.
All three variants compile through one :class:`repro.api.Session`.
"""

import sys
import time

from repro import limit_threads

limit_threads(1)

import numpy as np  # noqa: E402

from repro import api  # noqa: E402
from repro import tensor as T  # noqa: E402
from repro.frameworks import tfsim  # noqa: E402
from repro.rewrite import (  # noqa: E402
    Add,
    Identity,
    MatMul,
    Scale,
    Symbol,
    Transpose,
    best_variant,
)


def make_blur_operator(n: int) -> T.Tensor:
    """A normalized local blur: banded, near-orthogonal-free test operator."""
    h = np.zeros((n, n), dtype=np.float32)
    idx = np.arange(n)
    h[idx, idx] = 0.6
    h[idx[:-1], idx[1:]] = 0.2
    h[idx[1:], idx[:-1]] = 0.2
    return T.Tensor(h)


def variants(session: api.Session, n: int):
    def v1(h, x, y):
        i = tfsim.eye(n)
        return tfsim.transpose(h) @ y + (i - tfsim.transpose(h) @ h) @ x

    def v2(h, x, y):
        return tfsim.transpose(h) @ y + x - tfsim.transpose(h) @ (h @ x)

    def v3(h, x, y):
        return tfsim.transpose(h) @ (y - h @ x) + x

    return {"variant 1 (as written)": session.compile(v1, backend="tfsim"),
            "variant 2 (distributed)": session.compile(v2, backend="tfsim"),
            "variant 3 (factored)": session.compile(v3, backend="tfsim")}


def main(n: int = 1200, iters: int = 8) -> None:
    print(f"== image restoration (n = {n}, {iters} iterations) ==\n")
    rng = np.random.default_rng(0)
    truth = np.linspace(0.0, 1.0, n, dtype=np.float32).reshape(-1, 1)
    H = make_blur_operator(n)
    x = T.Tensor(H.numpy() @ truth + 0.01 * rng.standard_normal((n, 1)).astype(np.float32))

    session = api.Session()
    results = {}
    for name, step in variants(session, n).items():
        y = x
        step(H, x, y)  # trace outside the timed loop
        t0 = time.perf_counter()
        for _ in range(iters):
            y = step(H, x, y)
        elapsed = time.perf_counter() - t0
        results[name] = (y, elapsed)
        flops = step.last_report.total_flops
        print(f"{name:<26} {elapsed:8.4f}s total "
              f"({elapsed / iters:.4f}s/iter, {flops:,} FLOPs/iter)")

    (y1, t1) = results["variant 1 (as written)"]
    (y3, t3) = results["variant 3 (factored)"]
    print(f"\nvariant1 / variant3 speed ratio: {t1 / t3:.1f}x "
          "(paper reports ~40-80x at n=3000)")
    assert y1.allclose(y3, rtol=1e-2, atol=1e-3), "variants diverged!"

    # -- automatic discovery via the derivation graph ----------------------------
    Hs, xs, ys = Symbol("H", n, n), Symbol("x", n, 1), Symbol("y", n, 1)
    root = Add(
        MatMul(Transpose(Hs), ys),
        MatMul(Add(Identity(n), Scale(-1.0, MatMul(Transpose(Hs), Hs))), xs),
    )
    res = best_variant(root, max_nodes=300)
    print(f"\nderivation graph: {root.pretty()}")
    print(f"   -> discovered: {res.best.pretty()}")
    print(f"   via rules {' -> '.join(res.path)}; "
          f"{res.root_flops:,} -> {res.best_flops:,} FLOPs "
          f"({res.speedup_flops:.0f}x fewer)")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1200
    iters = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(n, iters)
