"""tfsim ops: each function works eagerly on Tensors and symbolically under
tracing — the same polymorphism that lets real TF code run in both modes
unchanged (the property the paper's Fig. 2 code relies on)."""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ...errors import TracingError
from ...ir import builder
from ...ir.tracing import SymbolicTensor, trace_loop
from ...tensor import creation
from ...tensor.tensor import Tensor

TensorLike = "Tensor | SymbolicTensor"


def constant(value: object, dtype: object | None = None) -> Tensor:
    """Create an eager tensor (``tf.constant``)."""
    return Tensor(value, dtype=dtype)


def eye(n: int, dtype: object | None = None) -> Tensor:
    """Identity tensor (``tf.eye``), annotated IDENTITY."""
    return creation.eye(n, dtype=dtype)


def zeros(m: int, n: int | None = None, dtype: object | None = None) -> Tensor:
    """Zero tensor (``tf.zeros``), annotated ZERO."""
    return creation.zeros(m, n, dtype=dtype)


def ones(m: int, n: int | None = None, dtype: object | None = None) -> Tensor:
    """All-ones tensor (``tf.ones``)."""
    return creation.ones(m, n, dtype=dtype)


def matmul(a: TensorLike, b: TensorLike) -> TensorLike:
    """Matrix product (``tf.matmul`` / the ``@`` operator)."""
    return a @ b


def transpose(a: TensorLike) -> TensorLike:
    """Transpose (``tf.transpose``)."""
    return a.T


def add(a: TensorLike, b: TensorLike) -> TensorLike:
    """Element-wise sum (``tf.add`` / ``+``)."""
    return a + b


def subtract(a: TensorLike, b: TensorLike) -> TensorLike:
    """Element-wise difference (``tf.subtract`` / ``-``)."""
    return a - b


def multiply(a: TensorLike, alpha: float) -> TensorLike:
    """Scalar scaling (``tf.multiply`` with a Python scalar)."""
    return a * alpha


def negative(a: TensorLike) -> TensorLike:
    """Element-wise negation (``tf.negative``)."""
    return -a


def concat(values: Sequence[TensorLike], axis: int = 0) -> TensorLike:
    """Concatenation (``tf.concat``).

    This is the op Experiment 4 uses to build the blocked matrix *inside*
    the computational graph, so the construction is visible to the
    optimizer (which still fails to exploit it — the paper's finding).
    """
    values = list(values)
    if not values:
        raise TracingError("concat needs at least one value")
    if any(isinstance(v, SymbolicTensor) for v in values):
        nodes = []
        for v in values:
            if isinstance(v, SymbolicTensor):
                nodes.append(v.node)
            elif isinstance(v, Tensor):
                nodes.append(builder.const(v.data))
            else:
                nodes.append(builder.const(np.asarray(v)))
        return SymbolicTensor(builder.concat(nodes, axis=axis))
    return creation.concat([v if isinstance(v, Tensor) else Tensor(v) for v in values],
                           axis=axis)


def fori_loop(
    trip_count: int,
    body: Callable,
    init: TensorLike,
    captured: Sequence[TensorLike] = (),
) -> TensorLike:
    """Counted loop with one carried value (``tf.while_loop`` analogue).

    ``body(i, carried, *captured) -> carried'``.  Under tracing this emits
    a single ``loop`` node whose rolled body is optimized by the LICM pass;
    eagerly it just runs the Python loop.
    """
    symbolic = isinstance(init, SymbolicTensor) or any(
        isinstance(c, SymbolicTensor) for c in captured
    )
    if symbolic:
        if isinstance(init, Tensor):
            init = SymbolicTensor(builder.const(init.data), init.props)
        sym_captured = []
        for c in captured:
            if isinstance(c, SymbolicTensor):
                sym_captured.append(c)
            elif isinstance(c, Tensor):
                sym_captured.append(SymbolicTensor(builder.const(c.data), c.props))
            else:
                raise TracingError(
                    f"captured value must be tensor-like, got {type(c).__name__}"
                )
        return trace_loop(body, init, sym_captured, trip_count=trip_count)
    carried = init
    for i in range(trip_count):
        carried = body(Tensor(np.array([[float(i)]], dtype=str(init.dtype))),
                       carried, *captured)
    return carried
