"""Transpose elimination and fusion.

Two rewrites, both of which the real frameworks perform when lowering to
MKL (it is why the paper's Table I shows ``AᵀB`` at reference speed):

* ``transpose(transpose(X)) → X``;
* a ``transpose`` feeding a ``matmul`` operand folds into the matmul's
  TRANSA/TRANSB flag, so no transposed copy is ever materialized.

Transposes with non-matmul consumers (e.g. feeding an ``add``) are kept —
there the copy is genuinely needed.
"""

from __future__ import annotations

from ..ir.graph import Graph
from ..ir.node import Node
from .base import GraphPass


class TransposeElimination(GraphPass):
    """Cancel double transposes, fuse single transposes into matmul flags."""

    name = "transpose_elim"

    def apply(self, graph: Graph) -> Graph:
        graph = self.transform_loop_bodies(graph)

        def fn(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            if node.op == "transpose":
                (x,) = new_inputs
                if x.op == "transpose":
                    self._count()
                    return x.inputs[0]
                return None
            if node.op == "matmul":
                a, b = new_inputs
                trans_a = bool(node.attrs.get("trans_a"))
                trans_b = bool(node.attrs.get("trans_b"))
                changed = False
                if a.op == "transpose":
                    a = a.inputs[0]
                    trans_a = not trans_a
                    changed = True
                if b.op == "transpose":
                    b = b.inputs[0]
                    trans_b = not trans_b
                    changed = True
                if not changed:
                    return None
                self._count()
                attrs = dict(node.attrs)
                attrs["trans_a"] = trans_a
                attrs["trans_b"] = trans_b
                return Node("matmul", (a, b), attrs, name=node.name)
            if node.op == "dot":
                # dot is orientation-insensitive; drop transposes outright.
                new = []
                changed = False
                for inp in new_inputs:
                    if inp.op == "transpose":
                        new.append(inp.inputs[0])
                        changed = True
                    else:
                        new.append(inp)
                if not changed:
                    return None
                self._count()
                return Node("dot", tuple(new), dict(node.attrs), name=node.name)
            return None

        # Iterate to fixpoint: fusing a matmul can expose a dangling double
        # transpose and vice versa.  Two sweeps suffice for any DAG produced
        # by the tracer (transpose chains have depth <= 2), but loop until
        # stable for safety.
        prev_count = -1
        while self.last_stats.rewrites != prev_count:
            prev_count = self.last_stats.rewrites
            graph = graph.rewrite(fn)
        return graph
