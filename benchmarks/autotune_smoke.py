"""End-to-end smoke of online autotuning across two processes.

Run this script **twice** with the same store directory::

    python benchmarks/autotune_smoke.py /tmp/plan-store

The first invocation drives the ``(A @ B) @ x`` chain on integer-valued
feeds (reassociation is bit-exact there) past the hot threshold: the
session races 2 candidates — the canonical left-association and the
derivation-search rival — under the ``REPRO_AUTOTUNE_BUDGET`` the CI job
sets, promotes the winner, and persists it (artifact + alias record) in
the store.  The output digest and the winner's name land in a marker
file inside the store dir.

The second invocation is a brand-new process — a service restart — and
must:

* **restore the promotion from disk**: ``promotions_restored >= 1`` with
  ``tuning_seconds == 0.0`` (zero re-tuning) and ``signatures_tuned ==
  0`` (the signature never re-races, however hot it gets);
* compile **zero** plans cold (``misses == 0`` — the winner warm-starts
  through the plan store);
* produce a bit-identical output digest (the promoted plan computes the
  same answer the canonical one did).

Any violated invariant exits non-zero — this is the CI ``autotune-smoke``
job's assertion surface.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys

import numpy as np

from repro import api
from repro.tensor.tensor import Tensor

MARKER = "autotune_smoke_cold.json"
AUTOTUNE = {"hot_threshold": 3, "max_candidates": 2, "seed": 7}
N = 128
CALLS = 6


def _chain(p, q, v):
    return (p @ q) @ v


def _drive(store_dir: str):
    rng = np.random.default_rng(7)
    feeds = [
        Tensor(rng.integers(0, 4, (N, N)).astype(np.float32)),
        Tensor(rng.integers(0, 4, (N, N)).astype(np.float32)),
        Tensor(rng.integers(0, 4, (N, 1)).astype(np.float32)),
    ]
    with api.Session(plan_store=store_dir, autotune=AUTOTUNE) as session:
        chain = session.compile(_chain)
        for _ in range(CALLS):
            out = chain(*feeds)
        stats = session.stats()
    digest = hashlib.sha1(out.data.tobytes()).hexdigest()
    return stats, digest


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("store_dir", help="plan store directory shared "
                                          "by both invocations")
    args = parser.parse_args(argv)
    marker = os.path.join(args.store_dir, MARKER)
    warm_phase = os.path.exists(marker)

    stats, digest = _drive(args.store_dir)
    at = stats.autotune
    failures = []

    if not warm_phase:
        if at.promotions != 1:
            failures.append(
                f"cold run expected 1 promotion, saw {at.promotions} "
                f"({at.candidates_raced} raced, {at.tuning_errors} "
                "error(s))"
            )
        if at.candidates_rejected:
            failures.append(
                f"integer feeds must keep every candidate bit-exact; "
                f"{at.candidates_rejected} rejected"
            )
        with open(marker, "w") as fh:
            json.dump({"digest": digest, "speedup_pct": at.speedup_pct},
                      fh)
        print(
            f"autotune-smoke COLD: {at.candidates_raced} candidate(s) "
            f"raced, {at.promotions} promotion(s) "
            f"(+{at.speedup_pct:.1f}% vs canonical), "
            f"{at.tuning_seconds:.4f}s tuning"
        )
    else:
        with open(marker) as fh:
            cold = json.load(fh)
        if at.promotions_restored < 1:
            failures.append(
                f"warm run restored {at.promotions_restored} "
                "promotion(s); expected >= 1"
            )
        if at.tuning_seconds != 0.0:
            failures.append(
                f"warm run spent {at.tuning_seconds:.4f}s tuning; "
                "expected 0 (the winner restores, it never re-races)"
            )
        if at.signatures_tuned != 0:
            failures.append(
                f"warm run re-tuned {at.signatures_tuned} signature(s)"
            )
        if stats.misses != 0:
            failures.append(
                f"warm run compiled {stats.misses} plan(s) cold; "
                "expected 0 (store warm start)"
            )
        if digest != cold["digest"]:
            failures.append("warm output differs from the cold run's")
        print(
            f"autotune-smoke WARM: {at.promotions_restored} promotion(s) "
            f"restored, {at.tuning_seconds:.4f}s tuning, "
            f"{stats.misses} cold compile(s), digest "
            f"{'match' if digest == cold['digest'] else 'MISMATCH'}"
        )
    print(stats.render())

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
