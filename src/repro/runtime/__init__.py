"""Compiled execution runtime: plans, plan cache, fusion, batched execution.

The reference :class:`~repro.ir.interpreter.Interpreter` re-walks the
graph on *every* call — recomputing topological order and liveness and
re-selecting kernels per node.  That is exactly the per-dispatch overhead
the paper attributes to TF/PyTorch eager execution; graph mode only wins
when knowledge about the expression is compiled into the execution once.
This package is that compile-once / execute-many layer:

``signature``  Canonical structural key of a Graph (ops, shapes, dtypes,
               attrs, property annotations) — node-identity-free, so
               independently built but structurally identical graphs
               share one key.
``compiler``   ``compile_plan(graph)``: Graph → :class:`Plan` — a flat
               instruction list with the schedule, kernel selection,
               FLOP/report records and buffer liveness all resolved at
               compile time.  Slot recycling is shape-aware, so every
               slot has one static shape.
``fusion``     Opt-in post-schedule rewrite (``compile_plan(...,
               fusion=True)``): adjacent elementwise chains collapse into
               single fused closures and trailing scales fold into GEMM's
               alpha — fewer kernel launches, no materialized
               intermediates, FLOP-total/peak-bytes-preserving reports.
``plan``       The :class:`Plan` object and its executor, plus
               :class:`PlanArena` — preallocated per-slot ndarray storage
               driven through the kernels' destination-aware (``out=``)
               variants, making repeated execution allocation-free after
               warmup.  Execution is output- and report-parity with the
               Interpreter in every fusion × arena combination (verified
               by ``tests/test_runtime_plans.py``).
``cache``      :class:`PlanCache` — signature-keyed LRU of compiled
               plans (the fold/fusion knobs key separately) with
               hit/miss/eviction stats and single-flight concurrent
               compilation.  Caches are instance-scoped and owned by
               :class:`repro.api.Session`; the process-wide default
               instance survives as the default session's cache (reaching
               it via ``default_plan_cache`` is deprecated).
``batch``      One plan over many feed sets, sequentially or via a
               thread pool (BLAS kernels release the GIL), optionally
               through one reused arena per worker, or — ``shards=N`` —
               through a multi-process :class:`ShardPool`.
``shard``      :class:`ShardPool` — N worker processes, each compiling
               the plan once (plans pickle *by reconstruction* via
               ``serialize``) and serving feed waves through
               shared-memory ring buffers with pinned bindings: the
               parent writes feeds straight into the shard's input
               slots, workers execute copy-free, outputs land in shared
               memory.  The GIL-free dispatch path.
``serialize``  Structural graph payloads — what crosses the process
               boundary (and what ``Plan.__reduce__`` pickles).
``persist``    On-disk accumulation of plan-cache signatures + compile
               times across runs (``laab cache-stats --save/--load``) —
               the real-world trace-dedup observability layer.
``store``      :class:`PlanStore` — the persistent, content-addressed
               on-disk plan store the persist layer priced out:
               versioned artifacts (optimized-graph payload + compile
               knobs, large consts as mmap-loaded ``.npy`` sidecars)
               keyed by signature digest, with trace-signature aliases
               so a cold ``Session`` skips the optimization pipeline
               and shard workers warm-start instead of recompiling.
               Bounded by :meth:`PlanStore.gc` (LRU-by-atime eviction,
               orphan and dangling-alias sweeps — ``laab store-gc``).
``autotune``   Online plan autotuning — hot signatures race rewrite
               derivations and compile-knob variants on real feeds,
               bit-identity-gated, and promote the winner into the
               cache and the store (``Options(autotune=...)``).
"""

from .autotune import AutotuneConfig, AutotuneStats, Autotuner
from .batch import ARENA_MODES, BatchResult, execute_batch
from .cache import CacheStats, PlanCache, default_plan_cache
from .compiler import compile_plan
from .fusion import FusionStats, fuse_instructions
from .plan import Instruction, PinnedBinding, Plan, PlanArena, SlotDescriptor
from .serialize import graph_from_payload, graph_to_payload
from .shard import ShardPool, ShardWorkerError, default_shards
from .signature import graph_signature
from .store import GCStats, PlanStore, StoreStats, runtime_fingerprint

__all__ = [
    "ARENA_MODES",
    "AutotuneConfig",
    "AutotuneStats",
    "Autotuner",
    "BatchResult",
    "CacheStats",
    "FusionStats",
    "GCStats",
    "Instruction",
    "PinnedBinding",
    "Plan",
    "PlanArena",
    "PlanCache",
    "PlanStore",
    "ShardPool",
    "ShardWorkerError",
    "SlotDescriptor",
    "StoreStats",
    "compile_plan",
    "default_plan_cache",
    "default_shards",
    "execute_batch",
    "fuse_instructions",
    "graph_from_payload",
    "graph_signature",
    "graph_to_payload",
    "runtime_fingerprint",
]
