"""Signature-keyed LRU cache of compiled plans.

The cache is keyed by :func:`~repro.runtime.signature.graph_signature`, so
*structurally identical* graphs share one plan regardless of where their
node objects came from — two independent traces of the same Python
function, or the same expression arriving from ``tfsim`` and ``pytsim``,
compile exactly once.  Graphs that differ in any attr (a ``trans_a`` flag,
a property annotation on an input, a constant's payload) key differently.

Caches are **instance-scoped**: every :class:`repro.api.Session` owns one.
The process-wide instance that backed PR 1 survives as the *default
session's* cache; reaching it directly through :func:`default_plan_cache`
is deprecated in favour of ``repro.api.Session``.

Thread-safety (audited for the instance-scoped design): every LRU
mutation — lookup bookkeeping, insertion, eviction, ``move_to_end`` —
happens under ``_lock``, and concurrent misses on one key are
*single-flighted*: the first thread compiles (outside the lock, so other
keys aren't serialized behind a slow compile) while later threads wait on
a per-key event and then read the finished plan.  Two threads racing the
same signature therefore trigger exactly one compile.
"""

from __future__ import annotations

import dataclasses
import threading
import warnings
from collections import OrderedDict

from ..ir.graph import Graph
from .compiler import compile_plan
from .plan import Plan
from .signature import graph_signature
from .singleflight import SingleFlight


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Lookups satisfied by re-lowering a persistent-store artifact
    #: (``via_store=True``): not in-memory hits, but not cold compiles
    #: either — ``misses`` stays the count of *full* compiles, which is
    #: what "a warm store compiles zero plans" is measured against.
    store_hits: int = 0
    #: Autotune winners swapped in via :meth:`PlanCache.promote`.
    promotions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.store_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """LRU cache mapping graph signatures to compiled :class:`Plan` s."""

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._plans: OrderedDict[tuple, Plan] = OrderedDict()
        #: Per-key lookup accounting that *survives eviction* — what the
        #: cross-run persistence layer (``laab cache-stats --save``)
        #: snapshots: key → [hits, compiles, total compile seconds,
        #: store loads, executions].  The last entry is the hotness
        #: signal :meth:`note_execution` feeds the autotuner.
        self._key_stats: dict[tuple, list] = {}
        self._lock = threading.Lock()
        #: Single-flights concurrent compiles of one key (shares _lock so
        #: its callbacks mutate the LRU/stats in the election's critical
        #: section).
        self._flight = SingleFlight(self._lock)
        #: Bumped by clear(): a compile that started before a clear must
        #: not insert its plan into (or pollute the stats of) the post-
        #: clear cache.
        self._epoch = 0

    def get(
        self,
        graph: Graph,
        *,
        fold_constants: bool = False,
        fusion: bool = False,
    ) -> Plan:
        """The compiled plan for ``graph`` — compiles on miss.

        ``fold_constants`` and ``fusion`` take part in the key: a folded
        (or fused) and a plain plan of the same graph execute different
        instruction sequences.

        Concurrent misses on one key compile exactly once (single-flight);
        ``stats.misses`` counts compile-triggering lookups, so it equals
        the number of compiles performed.
        """
        return self.get_with_info(
            graph, fold_constants=fold_constants, fusion=fusion
        )[0]

    def get_with_info(
        self,
        graph: Graph,
        *,
        fold_constants: bool = False,
        fusion: bool = False,
        via_store: bool = False,
    ) -> tuple[Plan, bool]:
        """Like :meth:`get`, also reporting whether *this call* compiled.

        The flag is what per-caller accounting needs under concurrency: a
        thread that waited on another thread's in-flight compile receives
        ``(plan, False)`` — only the single-flight leader gets ``True``.

        ``via_store=True`` marks the lookup as backed by a persistent-
        store artifact: ``graph`` was *loaded*, not derived, so an
        in-memory miss re-lowers it but is accounted as a store hit —
        ``stats.misses`` keeps meaning "cold compiles performed".
        """
        key = (graph_signature(graph), fold_constants, fusion)
        leader_epoch = [0]

        def probe() -> Plan | None:
            plan = self._plans.get(key)
            if plan is not None:
                self.stats.hits += 1
                rec = self._key_stats.get(key)
                if rec is not None:
                    rec[0] += 1
                self._plans.move_to_end(key)
            return plan

        def on_leader() -> None:
            if via_store:
                self.stats.store_hits += 1
            else:
                self.stats.misses += 1
            leader_epoch[0] = self._epoch

        def build() -> Plan:
            # Compile outside the lock: compilation can be slow and must
            # not serialize concurrent lookups of other graphs.
            return compile_plan(
                graph, fold_constants=fold_constants, fusion=fusion
            )

        def publish(plan: Plan) -> None:
            if self._epoch != leader_epoch[0]:
                return  # clear() happened mid-compile — don't repopulate
            self._plans[key] = plan
            rec = self._key_stats.setdefault(key, [0, 0, 0.0, 0, 0])
            if via_store:
                rec[3] += 1
            else:
                rec[1] += 1
                rec[2] += plan.compile_seconds
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.stats.evictions += 1

        return self._flight.run(key, probe, build, publish, on_leader)

    # -- autotune hooks --------------------------------------------------------

    def note_execution(self, key: tuple, *, count: int = 1) -> int:
        """Fold ``count`` plan executions into ``key``'s stats row.

        Returns the key's *hotness* — cumulative lookup hits plus
        executions — which is what the autotuner compares against its
        threshold.  ``key`` is the full cache key tuple
        ``(graph_signature(optimized), fold_constants, fusion)``; a
        Concrete caches its plan and never re-looks it up per call, so
        the execution count, not the hit count, is what actually grows
        with serving traffic.
        """
        with self._lock:
            rec = self._key_stats.setdefault(key, [0, 0, 0.0, 0, 0])
            while len(rec) < 5:  # rows created by older publishes
                rec.append(0)
            rec[4] += count
            return rec[0] + rec[4]

    def promote(self, key: tuple, plan: Plan) -> None:
        """Atomically swap ``plan`` in as the cached entry for ``key``.

        The autotune promotion point: future lookups that resolve to
        ``key`` (the *canonical* optimized graph and knobs) receive the
        winning plan, even though the winner was compiled from a rewrite
        of that graph and carries its own signature.  Re-inserts when
        the key was evicted; respects LRU capacity.
        """
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            self.stats.promotions += 1
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.stats.evictions += 1

    def snapshot(self) -> list[dict]:
        """Per-signature accounting rows for the persistence layer.

        One row per plan key ever compiled through this cache (evicted
        keys included — eviction is a capacity event, not a statistics
        reset): a stable hex digest of the structural signature, the
        fold/fusion knobs, cumulative hits/compiles, and compile
        seconds.  Digests — not raw signatures — cross the process
        boundary, so saved files stay compact and diff-able.
        """
        from .persist import signature_digest

        with self._lock:
            items = list(self._key_stats.items())
        rows = []
        for (sig, fold_constants, fusion), rec in items:
            hits, compiles, secs = rec[0], rec[1], rec[2]
            rows.append({
                "signature": signature_digest(sig),
                "fold_constants": fold_constants,
                "fusion": fusion,
                "hits": hits,
                "compiles": compiles,
                "compile_seconds": secs,
                # Plans re-lowered from a persistent-store artifact
                # rather than cold-compiled (0 on storeless sessions).
                "store_loads": rec[3] if len(rec) > 3 else 0,
                # Executions noted by the session layer (autotune hotness).
                "executions": rec[4] if len(rec) > 4 else 0,
            })
        return rows

    def contains(
        self,
        graph: Graph,
        *,
        fold_constants: bool = False,
        fusion: bool = False,
    ) -> bool:
        """Whether a plan for ``graph`` is cached (does not touch LRU order)."""
        with self._lock:
            return (graph_signature(graph), fold_constants, fusion) in self._plans

    def clear(self) -> None:
        """Drop every plan and reset the counters.

        Compiles already in flight finish but do not publish into the
        cleared cache (epoch check in :meth:`get_with_info`); their
        waiters re-elect a leader and recompile against the new epoch.
        """
        with self._lock:
            self._plans.clear()
            self.stats = CacheStats()
            self._key_stats.clear()
            self._epoch += 1
            self._flight.abandon_all_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PlanCache {len(self)}/{self.maxsize} plans, "
            f"{self.stats.hits} hits / {self.stats.misses} misses>"
        )


_default_cache = PlanCache(maxsize=256)

_deprecation_warned = False
_deprecation_lock = threading.Lock()


def _default_plan_cache() -> PlanCache:
    """The process-wide cache instance, warning-free — internal use only
    (the default :class:`repro.api.Session` adopts it)."""
    return _default_cache


def default_plan_cache() -> PlanCache:
    """Deprecated: the process-wide cache shared by the simulated
    frameworks.

    Cache ownership is now explicit — use ``repro.api.Session`` (its
    ``plan_cache`` attribute and ``stats()``) instead.  The warning fires
    once per process.
    """
    global _deprecation_warned
    if _deprecation_warned:
        return _default_cache
    with _deprecation_lock:
        if _deprecation_warned:
            return _default_cache
        _deprecation_warned = True
        warnings.warn(
            "default_plan_cache() is deprecated; use repro.api.Session — "
            "each session owns its own PlanCache (the process-wide default "
            "session keeps this instance)",
            DeprecationWarning,
            stacklevel=2,
        )
    return _default_cache
