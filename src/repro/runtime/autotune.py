"""Online plan autotuning: race candidate derivations on real feeds.

The repo has contained a Linnea-style derivation search
(:mod:`repro.rewrite`) and a chain DP since the foundation PRs, yet every
hot signature compiled through one canonical pipeline.  This module
closes the loop the paper only benchmarks: when a signature gets *hot*
(by :class:`~repro.runtime.cache.PlanCache` per-key counts), the session
generates 2–4 candidate plans — distinct rewrite derivations lifted
through :mod:`repro.rewrite.bridge` plus compile-knob variants (fusion
on/off; each candidate's compile also casts its own per-slot layout
votes) — races them on the caller's *real* feeds with seeded,
warmup-discarded timing under a configurable budget, and atomically
promotes the winner into the plan cache.  With a
:class:`~repro.runtime.store.PlanStore` attached, the winner, its
derivation record and its measured cost persist, so a restarted process
serves the tuned plan with **zero** re-tuning
(``promotions_restored``, ``tuning_seconds == 0`` warm).

Correctness gate
----------------
Every candidate is executed once on the real feeds and its outputs
compared **bit-for-bit** (``np.array_equal`` + dtype) against the
canonical plan's before it may be timed or promoted.  Fusion variants
are bit-identical by construction (the PR-3 contract); derivation
variants reassociate floating-point reductions and only survive the
gate when the data makes them exact (e.g. integer-valued feeds, or
rewrites that eliminate work rather than reorder it).  A candidate that
diverges is disqualified and counted — never raced, never promoted.

Where tuning runs
-----------------
``mode="inline"`` races in the triggering call (deterministic; the call
that crosses the threshold pays the budget once).  ``mode="worker"``
ships the candidates to a dedicated worker process over the same
pickle-by-reconstruction payloads shard workers use, raced off the hot
path by a background thread — serving continues on the canonical plan
and the winner is swapped in when the race reports back.  Tuning is
*breaker-safe*: every failure mode (a candidate that will not build, an
injected ``optimize.pass`` fault, a dead worker) degrades to the
canonical plan with a counter, never an exception on the serving path.

``REPRO_AUTOTUNE_BUDGET`` (seconds, float) overrides the configured
racing budget — the knob CI uses to keep smoke runs tiny.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import random
import threading
import time

import numpy as np

from ..errors import ConfigError
from ..ir.graph import Graph
from .compiler import compile_plan
from .plan import Plan
from .serialize import graph_from_payload, graph_to_payload
from .signature import graph_signature

__all__ = [
    "AutotuneConfig",
    "AutotuneStats",
    "Autotuner",
    "Candidate",
    "RaceOutcome",
    "BUDGET_ENV",
    "generate_candidates",
    "race",
]

#: Environment override (seconds) for the racing budget.
BUDGET_ENV = "REPRO_AUTOTUNE_BUDGET"

AUTOTUNE_MODES = ("inline", "worker")


@dataclasses.dataclass(frozen=True)
class AutotuneConfig:
    """Knobs of one session's autotuner (``Options(autotune=...)``).

    Attributes
    ----------
    hot_threshold:
        Per-key executions (plus cache hits) before a signature tunes.
    max_candidates:
        Total plans in a race, canonical included (clamped to 2–4 by
        ``validate`` — the ISSUE's band; one canonical + 1–3 rivals).
    budget_seconds:
        Wall-clock budget of the timing loop (every candidate still gets
        at least one timed round).  ``REPRO_AUTOTUNE_BUDGET`` overrides.
    warmup:
        Discarded executions per candidate before timing starts.
    reps:
        Timing rounds per candidate (budget may cut them short).
    seed:
        Seeds the round-order shuffle — with a fixed seed and budget the
        race is deterministic up to genuine timing separation.
    min_speedup:
        Fractional margin a rival must beat the canonical best by to be
        promoted (guards against promoting into measurement noise).
    mode:
        ``"inline"`` (race in the triggering call) or ``"worker"``
        (dedicated worker process driven by a background thread).
    derive:
        Whether to generate rewrite-derivation candidates at all
        (``False`` leaves only compile-knob variants).
    knob_variants:
        Whether to generate compile-knob candidates (the fusion flip).
        ``False`` races derivations only — what the chaos drill uses to
        prove a faulted derivation leaves the canonical plan serving.
    derive_limit:
        Max derivation candidates per race.
    derive_max_graph_nodes:
        Graphs larger than this skip the derivation search (the
        expression space explodes; knob variants still race).
    derive_search_nodes:
        ``max_nodes`` budget handed to the derivation-graph exploration.
    """

    hot_threshold: int = 16
    max_candidates: int = 4
    budget_seconds: float = 0.25
    warmup: int = 2
    reps: int = 8
    seed: int = 0
    min_speedup: float = 0.02
    mode: str = "inline"
    derive: bool = True
    knob_variants: bool = True
    derive_limit: int = 2
    derive_max_graph_nodes: int = 48
    derive_search_nodes: int = 400

    @staticmethod
    def normalize(value: object) -> "AutotuneConfig | None":
        """Coerce an ``Options(autotune=...)`` value.

        Accepts ``None``/``False`` (off), ``True`` (defaults), a mapping
        of field overrides, or an :class:`AutotuneConfig`.
        """
        if value is None or value is False:
            return None
        if value is True:
            config = AutotuneConfig()
        elif isinstance(value, AutotuneConfig):
            config = value
        elif isinstance(value, dict):
            unknown = set(value) - {
                f.name for f in dataclasses.fields(AutotuneConfig)
            }
            if unknown:
                raise ConfigError(
                    f"unknown autotune fields: {sorted(unknown)}"
                )
            config = AutotuneConfig(**value)
        else:
            raise ConfigError(
                "autotune must be None, True, a dict of AutotuneConfig "
                f"fields, or an AutotuneConfig, got {type(value).__name__}"
            )
        config.validate()
        return config

    def validate(self) -> None:
        if self.hot_threshold < 1:
            raise ConfigError(
                f"autotune hot_threshold must be >= 1, got {self.hot_threshold}"
            )
        if not 2 <= self.max_candidates <= 4:
            raise ConfigError(
                "autotune max_candidates must be between 2 and 4 "
                f"(canonical included), got {self.max_candidates}"
            )
        if self.budget_seconds <= 0:
            raise ConfigError(
                f"autotune budget_seconds must be > 0, got {self.budget_seconds}"
            )
        if self.warmup < 0 or self.reps < 1:
            raise ConfigError(
                f"autotune needs warmup >= 0 and reps >= 1, got "
                f"warmup={self.warmup} reps={self.reps}"
            )
        if not 0.0 <= self.min_speedup < 1.0:
            raise ConfigError(
                f"autotune min_speedup must be in [0, 1), got {self.min_speedup}"
            )
        if self.mode not in AUTOTUNE_MODES:
            raise ConfigError(
                f"autotune mode must be one of {AUTOTUNE_MODES}, got "
                f"{self.mode!r}"
            )
        if self.derive_limit < 0 or self.derive_max_graph_nodes < 1 \
                or self.derive_search_nodes < 1:
            raise ConfigError("autotune derive limits must be positive")

    def effective_budget(self) -> float:
        """The racing budget, with the env override applied."""
        raw = os.environ.get(BUDGET_ENV)
        if raw:
            try:
                value = float(raw)
            except ValueError:
                raise ConfigError(
                    f"{BUDGET_ENV} must be a float (seconds), got {raw!r}"
                ) from None
            if value > 0:
                return value
        return self.budget_seconds


@dataclasses.dataclass
class Candidate:
    """One plan in a race: a graph plus compile knobs, with its verdicts."""

    name: str
    graph: Graph
    fold_constants: bool
    fusion: bool
    #: Human-readable provenance — the rewrite derivation (``expr.pretty``)
    #: or the compile knob flipped.  Persisted with the winner.
    derivation: str = ""
    plan: "Plan | None" = None
    best_seconds: "float | None" = None
    bit_identical: "bool | None" = None
    error: "str | None" = None

    @property
    def alive(self) -> bool:
        return self.plan is not None and self.error is None


@dataclasses.dataclass(frozen=True)
class RaceOutcome:
    """What one race measured and decided."""

    candidates: tuple[Candidate, ...]
    winner: "Candidate | None"
    canonical_seconds: "float | None"
    #: True when a non-canonical winner cleared ``min_speedup``.
    promote: bool
    speedup_pct: float

    @property
    def raced(self) -> int:
        return sum(1 for c in self.candidates if c.best_seconds is not None)

    @property
    def rejected(self) -> int:
        return sum(1 for c in self.candidates if c.bit_identical is False)


def generate_candidates(
    optimized: Graph,
    *,
    fold_constants: bool,
    fusion: bool,
    config: AutotuneConfig,
) -> list[Candidate]:
    """Candidate list for one hot signature, canonical first.

    Order of precedence under ``max_candidates``: the canonical plan,
    then rewrite derivations (cheapest first), then the fusion-flip knob
    variant.  Derivation candidates are normalized through the *default*
    pipeline — never the aware one, whose chain-reordering pass would
    collapse distinct associations right back together — and deduped
    against the canonical graph (and each other) by structural
    signature.  A candidate whose normalization fails (including an
    injected ``optimize.pass`` fault) is silently dropped: candidate
    generation must never take the hot path down.
    """
    canonical = Candidate(
        name="canonical",
        graph=optimized,
        fold_constants=fold_constants,
        fusion=fusion,
        derivation="session pipeline",
    )
    out = [canonical]
    seen = {(graph_signature(optimized), fold_constants, fusion)}
    if config.derive and len(optimized) <= config.derive_max_graph_nodes:
        out.extend(
            _derivation_candidates(
                optimized, fold_constants=fold_constants, fusion=fusion,
                config=config, seen=seen,
            )
        )
    if config.knob_variants and (
        graph_signature(optimized), fold_constants, not fusion
    ) not in seen:
        out.append(
            Candidate(
                name="fusion-on" if not fusion else "fusion-off",
                graph=optimized,
                fold_constants=fold_constants,
                fusion=not fusion,
                derivation=f"compile knob: fusion={not fusion}",
            )
        )
    return out[: config.max_candidates]


def _derivation_candidates(
    optimized: Graph,
    *,
    fold_constants: bool,
    fusion: bool,
    config: AutotuneConfig,
    seen: set,
) -> list[Candidate]:
    from ..passes import default_pipeline
    from ..rewrite import graph_to_expr, variants
    from ..rewrite.bridge import expr_to_graph

    lifted = None
    try:
        lifted = graph_to_expr(optimized)
    except Exception:
        return []
    if lifted is None:
        return []
    expr, env = lifted
    try:
        ranked = variants(
            expr,
            max_nodes=config.derive_search_nodes,
            limit=config.derive_limit + 2,
        )
    except Exception:
        return []
    dtype = optimized.outputs[0].dtype
    out: list[Candidate] = []
    for i, (variant, _flops) in enumerate(ranked):
        if len(out) >= config.derive_limit:
            break
        try:
            graph = expr_to_graph(
                variant, env, inputs=optimized.inputs, dtype=dtype
            )
            graph = default_pipeline().run(graph)
        except Exception:
            continue  # unbuildable / fault-injected candidate: drop it
        key = (graph_signature(graph), fold_constants, fusion)
        if key in seen:
            continue
        seen.add(key)
        out.append(
            Candidate(
                name=f"derivation-{i}",
                graph=graph,
                fold_constants=fold_constants,
                fusion=fusion,
                derivation=variant.pretty(),
            )
        )
    return out


def race(
    candidates: list[Candidate],
    feeds: list[np.ndarray],
    *,
    config: AutotuneConfig,
    use_arena: bool = False,
    budget: "float | None" = None,
) -> RaceOutcome:
    """Compile, verify, and time ``candidates`` on ``feeds``.

    ``candidates[0]`` must be the canonical plan (it may arrive
    pre-compiled via ``.plan``).  Every rival is first proven
    bit-identical to the canonical outputs on these exact feeds;
    divergent candidates are disqualified before a single timed round.
    Timing interleaves candidates in a per-round order shuffled by
    ``config.seed`` and keeps each candidate's best-of — robust to
    one-off scheduler noise and deterministic for a fixed seed once the
    candidates are genuinely separated.  ``budget`` caps the timing
    loop's wall clock (default :meth:`AutotuneConfig.effective_budget`);
    round zero always completes so every alive candidate has a
    measurement.
    """
    if not candidates:
        raise ValueError("race needs at least the canonical candidate")
    canonical = candidates[0]
    for cand in candidates:
        if cand.plan is None:
            try:
                cand.plan = compile_plan(
                    cand.graph,
                    fold_constants=cand.fold_constants,
                    fusion=cand.fusion,
                )
            except Exception as exc:
                cand.error = f"compile failed: {exc!r}"
    if canonical.plan is None:
        return RaceOutcome(
            candidates=tuple(candidates), winner=None,
            canonical_seconds=None, promote=False, speedup_pct=0.0,
        )
    # Bit-identity gate: one verification run per candidate, plain
    # per-call execution (no arena aliasing while comparing buffers).
    ref_outs, _ = canonical.plan.execute(feeds, record=False)
    canonical.bit_identical = True
    for cand in candidates[1:]:
        if not cand.alive:
            continue
        try:
            outs, _ = cand.plan.execute(feeds, record=False)
        except Exception as exc:
            cand.error = f"execute failed: {exc!r}"
            continue
        cand.bit_identical = len(outs) == len(ref_outs) and all(
            o.dtype == r.dtype and np.array_equal(o, r)
            for o, r in zip(outs, ref_outs)
        )
    racers = [
        c for c in candidates
        if c.alive and (c is canonical or c.bit_identical)
    ]
    arenas = {
        id(c): (c.plan.new_arena() if use_arena else None) for c in racers
    }
    for cand in racers:
        for _ in range(config.warmup):
            cand.plan.execute(feeds, record=False, arena=arenas[id(cand)])
    rng = random.Random(config.seed)
    if budget is None:
        budget = config.effective_budget()
    deadline = time.perf_counter() + budget
    for rnd in range(config.reps):
        if rnd > 0 and time.perf_counter() >= deadline:
            break
        order = list(racers)
        rng.shuffle(order)
        for cand in order:
            arena = arenas[id(cand)]
            t0 = time.perf_counter()
            cand.plan.execute(feeds, record=False, arena=arena)
            elapsed = time.perf_counter() - t0
            if cand.best_seconds is None or elapsed < cand.best_seconds:
                cand.best_seconds = elapsed
    timed = [c for c in racers if c.best_seconds is not None]
    if not timed or canonical.best_seconds is None:
        return RaceOutcome(
            candidates=tuple(candidates), winner=None,
            canonical_seconds=canonical.best_seconds,
            promote=False, speedup_pct=0.0,
        )
    winner = min(timed, key=lambda c: (c.best_seconds, candidates.index(c)))
    promote = (
        winner is not canonical
        and winner.best_seconds
        <= canonical.best_seconds * (1.0 - config.min_speedup)
    )
    speedup = (
        (canonical.best_seconds - winner.best_seconds)
        / canonical.best_seconds * 100.0
        if winner is not canonical else 0.0
    )
    return RaceOutcome(
        candidates=tuple(candidates),
        winner=winner,
        canonical_seconds=canonical.best_seconds,
        promote=promote,
        speedup_pct=max(0.0, speedup),
    )


# -- the dedicated race worker (mode="worker") --------------------------------


def _race_worker(conn, specs, feeds, cfg_kwargs, use_arena, budget) -> None:
    """Entry point of the dedicated tuning worker process.

    Candidates arrive as serialize payloads (the same
    pickle-by-reconstruction substrate shard workers use); results go
    back as plain rows — the parent re-compiles only the winner.
    """
    try:
        candidates = [
            Candidate(
                name=s["name"],
                graph=graph_from_payload(s["payload"]),
                fold_constants=s["fold_constants"],
                fusion=s["fusion"],
                derivation=s["derivation"],
            )
            for s in specs
        ]
        config = AutotuneConfig(**cfg_kwargs)
        outcome = race(
            candidates, feeds, config=config, use_arena=use_arena,
            budget=budget,
        )
        rows = [
            {
                "name": c.name,
                "best_seconds": c.best_seconds,
                "bit_identical": c.bit_identical,
                "error": c.error,
            }
            for c in outcome.candidates
        ]
        conn.send(("ok", rows))
    except BaseException as exc:  # the parent must always hear back
        try:
            conn.send(("error", repr(exc)))
        except Exception:
            pass
    finally:
        conn.close()


@dataclasses.dataclass(frozen=True)
class AutotuneStats:
    """Point-in-time autotuner counters (part of ``SessionStats``)."""

    signatures_tuned: int = 0
    candidates_raced: int = 0
    candidates_rejected: int = 0
    promotions: int = 0
    promotions_restored: int = 0
    tuning_seconds: float = 0.0
    #: Measured speedup of the *last* promotion, percent vs canonical.
    speedup_pct: float = 0.0
    tuning_errors: int = 0

    def render(self) -> str:
        line = (
            f"autotune: {self.signatures_tuned} signature(s) tuned | "
            f"{self.candidates_raced} candidate(s) raced / "
            f"{self.candidates_rejected} rejected (bit-divergent) | "
            f"{self.promotions} promotion(s)"
        )
        if self.promotions:
            line += f" (last +{self.speedup_pct:.1f}% vs canonical)"
        line += f" | {self.tuning_seconds:.4f}s tuning"
        if self.promotions_restored:
            line += (
                f" | {self.promotions_restored} promotion(s) restored "
                "from store"
            )
        if self.tuning_errors:
            line += f" | {self.tuning_errors} tuning error(s)"
        return line


class Autotuner:
    """Per-session tuning driver: hotness claims, races, promotions.

    One instance per :class:`~repro.api.session.Session` (so serve
    tenants get independent tuning budgets).  All entry points are
    exception-safe — a tuning failure is a counter, never an error on
    the serving path — and all counters are lock-protected.
    """

    def __init__(self, config: AutotuneConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        #: Keys tuned, in-flight, or restored — claimed exactly once.
        self._claimed: set = set()
        self._stats = {
            "signatures_tuned": 0,
            "candidates_raced": 0,
            "candidates_rejected": 0,
            "promotions": 0,
            "promotions_restored": 0,
            "tuning_seconds": 0.0,
            "speedup_pct": 0.0,
            "tuning_errors": 0,
        }
        self._threads: list[threading.Thread] = []
        self._procs: list = []
        self._closing = False

    # -- claims ----------------------------------------------------------------

    def claim(self, key: tuple) -> bool:
        """Atomically claim ``key`` for tuning; False if already claimed."""
        with self._lock:
            if key in self._claimed or self._closing:
                return False
            self._claimed.add(key)
            return True

    def mark_restored(self, key: tuple) -> bool:
        """Record a promotion restored from the plan store (warm start).

        Claims the key — a restored winner never re-tunes — and counts
        it once.  Returns whether this call did the claiming.
        """
        with self._lock:
            if key in self._claimed:
                return False
            self._claimed.add(key)
            self._stats["promotions_restored"] += 1
            return True

    # -- tuning ----------------------------------------------------------------

    def tune(self, session, concrete, feeds: list[np.ndarray]) -> None:
        """Race candidates for ``concrete`` (already claimed by caller).

        Inline mode runs here; worker mode returns immediately and races
        in a dedicated worker process driven by a daemon thread.  Never
        raises.
        """
        if self.config.mode == "inline":
            self._tune_sync(session, concrete, feeds)
            return
        thread = threading.Thread(
            target=self._tune_sync,
            args=(session, concrete, feeds),
            name="repro-autotune",
            daemon=True,
        )
        with self._lock:
            if self._closing:
                return
            self._threads.append(thread)
        thread.start()

    def _tune_sync(self, session, concrete, feeds) -> None:
        start = time.perf_counter()
        try:
            outcome = self._race_for(session, concrete, feeds)
            with self._lock:
                self._stats["candidates_raced"] += outcome.raced
                self._stats["candidates_rejected"] += outcome.rejected
            if outcome.promote and not self._closing:
                record = self._derivation_record(outcome)
                session._apply_promotion(concrete, outcome.winner, record)
                with self._lock:
                    self._stats["promotions"] += 1
                    self._stats["speedup_pct"] = outcome.speedup_pct
        except Exception:
            with self._lock:
                self._stats["tuning_errors"] += 1
        finally:
            with self._lock:
                self._stats["signatures_tuned"] += 1
                self._stats["tuning_seconds"] += time.perf_counter() - start

    def _race_for(self, session, concrete, feeds) -> RaceOutcome:
        fold = concrete.plan.source[1] if concrete.plan.source else False
        fusion = concrete.plan.source[2] if concrete.plan.source else False
        candidates = generate_candidates(
            concrete.optimized,
            fold_constants=fold,
            fusion=fusion,
            config=self.config,
        )
        candidates[0].plan = concrete.plan
        use_arena = concrete.arena is not None
        if self.config.mode == "worker" and len(candidates) > 1:
            rows = self._race_in_worker(candidates, feeds, use_arena)
            if rows is not None:
                return self._merge_worker_rows(candidates, rows)
            # Worker died or timed out: fall back to the canonical plan
            # (no inline re-race — the budget was spent).
            return RaceOutcome(
                candidates=tuple(candidates), winner=None,
                canonical_seconds=None, promote=False, speedup_pct=0.0,
            )
        return race(candidates, feeds, config=self.config,
                    use_arena=use_arena)

    def _race_in_worker(self, candidates, feeds, use_arena):
        """Run the race in a dedicated worker process; rows or ``None``."""
        specs = []
        for c in candidates:
            specs.append({
                "name": c.name,
                "payload": graph_to_payload(c.graph),
                "fold_constants": c.fold_constants,
                "fusion": c.fusion,
                "derivation": c.derivation,
            })
        budget = self.config.effective_budget()
        cfg_kwargs = dataclasses.asdict(self.config)
        ctx = multiprocessing.get_context()
        parent, child = ctx.Pipe()
        proc = ctx.Process(
            target=_race_worker,
            args=(child, specs, feeds, cfg_kwargs, use_arena, budget),
            daemon=True,
        )
        with self._lock:
            if self._closing:
                return None
            self._procs.append(proc)
        proc.start()
        child.close()
        try:
            # Generous deadline: compile + verify + warmup live outside
            # the racing budget, but a hung worker must not leak.
            if parent.poll(budget * 4 + 30.0):
                status, payload = parent.recv()
                if status == "ok":
                    return payload
            return None
        except (EOFError, OSError):
            return None
        finally:
            parent.close()
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            with self._lock:
                if proc in self._procs:
                    self._procs.remove(proc)

    def _merge_worker_rows(self, candidates, rows) -> RaceOutcome:
        """Fold worker-measured rows back onto the parent's candidates
        and decide promotion; the winner recompiles here (deterministic
        — same graph, same knobs)."""
        by_name = {c.name: c for c in candidates}
        for row in rows:
            cand = by_name.get(row["name"])
            if cand is None:
                continue
            cand.best_seconds = row["best_seconds"]
            cand.bit_identical = row["bit_identical"]
            cand.error = row["error"]
        canonical = candidates[0]
        timed = [
            c for c in candidates
            if c.best_seconds is not None
            and (c is canonical or c.bit_identical)
        ]
        if not timed or canonical.best_seconds is None:
            return RaceOutcome(
                candidates=tuple(candidates), winner=None,
                canonical_seconds=canonical.best_seconds,
                promote=False, speedup_pct=0.0,
            )
        winner = min(
            timed, key=lambda c: (c.best_seconds, candidates.index(c))
        )
        if winner is not canonical and winner.plan is None:
            try:
                winner.plan = compile_plan(
                    winner.graph,
                    fold_constants=winner.fold_constants,
                    fusion=winner.fusion,
                )
            except Exception:
                winner = canonical
        promote = (
            winner is not canonical
            and winner.best_seconds
            <= canonical.best_seconds * (1.0 - self.config.min_speedup)
        )
        speedup = (
            (canonical.best_seconds - winner.best_seconds)
            / canonical.best_seconds * 100.0
            if winner is not canonical else 0.0
        )
        return RaceOutcome(
            candidates=tuple(candidates), winner=winner,
            canonical_seconds=canonical.best_seconds,
            promote=promote, speedup_pct=max(0.0, speedup),
        )

    @staticmethod
    def _derivation_record(outcome: RaceOutcome) -> dict:
        """The JSON-able record persisted with a promoted winner."""
        winner = outcome.winner
        return {
            "winner": winner.name,
            "derivation": winner.derivation,
            "fold_constants": bool(winner.fold_constants),
            "fusion": bool(winner.fusion),
            "candidates_raced": outcome.raced,
            "canonical_seconds": outcome.canonical_seconds,
            "winner_seconds": winner.best_seconds,
            "speedup_pct": outcome.speedup_pct,
        }

    # -- reporting / lifecycle -------------------------------------------------

    def stats(self) -> AutotuneStats:
        with self._lock:
            return AutotuneStats(**self._stats)

    def close(self, timeout: float = 2.0) -> None:
        """Stop background tuning: no new races, reap worker processes.

        In-flight promotions may still land (they are harmless — the
        plan cache and store accept them) but nothing new starts.
        """
        with self._lock:
            self._closing = True
            procs = list(self._procs)
            threads = list(self._threads)
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass
        for thread in threads:
            thread.join(timeout=timeout)
