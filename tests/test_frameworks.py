"""Tests for the simulated frameworks: tfsim and pytsim."""

import numpy as np
import pytest

from repro.errors import ChainError, ShapeError, TracingError
from repro.frameworks import pytsim, tfsim
from repro.frameworks.common import PYT_PROFILE, TF_PROFILE, CompiledFunction
from repro.tensor import Tensor
from repro.tensor.properties import Property


class TestTfsimEager:
    def test_constant(self):
        t = tfsim.constant([[1.0, 2.0]])
        assert isinstance(t, Tensor)
        assert t.shape == (1, 2)

    def test_creation_ops(self):
        assert Property.IDENTITY in tfsim.eye(4).props
        assert Property.ZERO in tfsim.zeros(3).props
        assert tfsim.ones(2, 5).shape == (2, 5)

    def test_eager_matmul(self, operands):
        a, b = operands["A"], operands["B"]
        assert tfsim.matmul(a, b).allclose(a.numpy() @ b.numpy())

    def test_eager_ops(self, operands):
        a, b = operands["A"], operands["B"]
        assert tfsim.add(a, b).allclose(a.numpy() + b.numpy())
        assert tfsim.subtract(a, b).allclose(a.numpy() - b.numpy())
        assert tfsim.multiply(a, 3.0).allclose(3.0 * a.numpy())
        assert tfsim.negative(a).allclose(-a.numpy())
        assert tfsim.transpose(a).allclose(a.numpy().T)

    def test_concat_eager(self, operands):
        a, b = operands["A"], operands["B"]
        out = tfsim.concat([a, b], axis=0)
        assert out.shape == (a.shape[0] * 2, a.shape[1])

    def test_concat_empty_rejected(self):
        with pytest.raises(TracingError):
            tfsim.concat([])

    def test_tridiagonal_matmul_eager(self, operands):
        t, b = operands["T"], operands["B"]
        out = tfsim.linalg.tridiagonal_matmul(t, b)
        assert out.allclose(t.numpy() @ b.numpy())

    def test_tridiagonal_matmul_requires_square(self, operands):
        with pytest.raises(ShapeError):
            tfsim.linalg.tridiagonal_matmul(
                Tensor(np.zeros((3, 4), dtype=np.float32)), operands["B"]
            )

    def test_linalg_diag_helpers(self, operands):
        d = tfsim.linalg.diag(Tensor(np.arange(1, 4, dtype=np.float32)))
        assert Property.DIAGONAL in d.props
        part = tfsim.linalg.diag_part(d)
        assert np.allclose(part.numpy().ravel(), [1, 2, 3])


class TestTfsimGraphMode:
    def test_decorator_bare(self, operands):
        @tfsim.function
        def f(a, b):
            return a @ b

        out = f(operands["A"], operands["B"])
        assert out.allclose(operands["A"].numpy() @ operands["B"].numpy())

    def test_decorator_with_args(self, operands):
        @tfsim.function(aware=True)
        def f(h, x):
            return tfsim.transpose(h) @ h @ x

        out = f(operands["H"], operands["x"])
        ref = operands["H"].numpy().T @ (operands["H"].numpy() @ operands["x"].numpy())
        assert out.allclose(ref, rtol=1e-3)
        assert f.last_report.kernel_counts().get("gemm", 0) == 0  # reordered

    def test_trace_cached_per_signature(self, operands):
        @tfsim.function
        def f(a, b):
            return a @ b

        f(operands["A"], operands["B"])
        f(operands["A"], operands["B"])
        assert f.trace_count == 1

    def test_retrace_on_new_shape(self, operands):
        @tfsim.function
        def f(a):
            return a @ a

        f(operands["A"])
        from repro.tensor import random_general

        f(random_general(8, seed=77))
        assert f.trace_count == 2

    def test_retrace_on_new_props(self, operands):
        """Annotations are part of the signature: the aware pipeline may
        specialize on them."""
        @tfsim.function
        def f(a):
            return a @ a

        f(operands["A"])
        f(operands["A"].with_props(Property.SYMMETRIC))
        assert f.trace_count == 2

    def test_non_tensor_arg_rejected(self):
        @tfsim.function
        def f(a):
            return a @ a

        with pytest.raises(TracingError):
            f(np.zeros((3, 3)))

    def test_multiple_outputs(self, operands):
        @tfsim.function
        def f(a, b):
            return a @ b, a + b

        o1, o2 = f(operands["A"], operands["B"])
        assert o1.allclose(operands["A"].numpy() @ operands["B"].numpy())
        assert o2.allclose(operands["A"].numpy() + operands["B"].numpy())

    def test_graph_introspection(self, operands):
        @tfsim.function
        def f(a, b):
            return (a.T @ b).T @ (a.T @ b)

        initial = f.initial_graph(operands["A"], operands["B"])
        optimized = f.optimized_graph(operands["A"], operands["B"])
        assert initial.op_counts()["matmul"] == 3
        assert optimized.op_counts()["matmul"] == 2

    def test_trace_seconds_recorded(self, operands):
        @tfsim.function
        def f(a):
            return a @ a

        f.get_concrete(operands["A"])
        assert f.last_trace_seconds > 0

    def test_grappler_facade(self, operands):
        from repro.ir import trace

        g = trace(lambda a, b: a @ b + a @ b, [operands["A"], operands["B"]])
        out = tfsim.grappler.optimize(g)
        assert out.op_counts()["matmul"] == 1
        report = tfsim.grappler.optimization_report(g)
        assert "cse" in report

    def test_fori_loop_eager_matches_graph(self, operands):
        a, b = operands["A"], operands["B"]

        def body(i, acc, aa, bb):
            return acc + aa @ bb

        eager = tfsim.fori_loop(3, body, tfsim.zeros(*a.shape), [a, b])

        @tfsim.function
        def graph_fn(p, q):
            return tfsim.fori_loop(3, body, tfsim.zeros(*p.shape), [p, q])

        graph = graph_fn(a, b)
        assert eager.allclose(graph, rtol=1e-3)


class TestPytsim:
    def test_tensor_creation(self):
        t = pytsim.tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert Property.IDENTITY in pytsim.eye(3).props

    def test_eager_ops(self, operands):
        a, b = operands["A"], operands["B"]
        assert pytsim.matmul(a, b).allclose(a.numpy() @ b.numpy())
        assert pytsim.t(a).allclose(a.numpy().T)
        assert pytsim.add(a, b).allclose(a.numpy() + b.numpy())
        assert pytsim.sub(a, b).allclose(a.numpy() - b.numpy())
        assert pytsim.mul(a, 2.0).allclose(2 * a.numpy())
        assert pytsim.neg(a).allclose(-a.numpy())

    def test_cat(self, operands):
        out = pytsim.cat([operands["A"], operands["B"]], dim=1)
        assert out.shape == (operands["A"].shape[0], operands["A"].shape[1] * 2)

    def test_jit_script(self, operands):
        @pytsim.jit.script
        def f(a, b):
            return (a.T @ b).T @ a.T @ b

        out = f(operands["A"], operands["B"])
        ref = (operands["A"].numpy().T @ operands["B"].numpy()).T @ \
            operands["A"].numpy().T @ operands["B"].numpy()
        assert out.allclose(ref, rtol=1e-3)
        assert f.last_report.kernel_counts()["gemm"] == 3  # no CSE possible

    def test_profiles_differ(self):
        assert TF_PROFILE.name == "tfsim"
        assert PYT_PROFILE.name == "pytsim"
        assert (PYT_PROFILE.paper_decorator_overhead_s
                > TF_PROFILE.paper_decorator_overhead_s)

    def test_no_tridiagonal_matmul(self):
        """pytsim must NOT have the TF-only op (Table IV 'n.a.')."""
        assert not hasattr(pytsim.linalg, "tridiagonal_matmul")


class TestMultiDot:
    def test_eager_matches_reference(self, operands):
        h, x = operands["H"], operands["x"]
        out = pytsim.linalg.multi_dot([h.T, h, x])
        ref = h.numpy().T @ h.numpy() @ x.numpy()
        assert out.allclose(ref, rtol=1e-3)

    def test_eager_uses_optimal_order(self, operands):
        """multi_dot of HᵀHx must not allocate an n×n intermediate; we
        can't observe allocations directly, but the result of the optimal
        order equals the reference and the DP tree is right-to-left."""
        from repro.chain import optimal_parenthesization

        h, x = operands["H"], operands["x"]
        sol = optimal_parenthesization([h.T.shape, h.shape, x.shape])
        assert sol.tree == (0, (1, 2))

    def test_traced_multi_dot(self, operands):
        h, x = operands["H"], operands["x"]

        @pytsim.jit.script
        def f(hh, xx):
            return pytsim.linalg.multi_dot([hh.T, hh, xx])

        out = f(h, x)
        ref = h.numpy().T @ (h.numpy() @ x.numpy())
        assert out.allclose(ref, rtol=1e-3)
        assert f.last_report.kernel_counts().get("gemm", 0) == 0

    def test_four_matrix_chain(self, operands):
        h, x, y = operands["H"], operands["x"], operands["y"]
        out = pytsim.linalg.multi_dot([h.T, y, x.T, h])
        ref = (h.numpy().T @ y.numpy()) @ (x.numpy().T @ h.numpy())
        assert out.allclose(ref, rtol=1e-3)

    def test_too_few_matrices(self, operands):
        with pytest.raises(ChainError):
            pytsim.linalg.multi_dot([operands["A"]])

    def test_mixed_tensor_ndarray(self, operands):
        out = pytsim.linalg.multi_dot(
            [operands["A"], operands["B"].numpy()]
        )
        assert out.allclose(operands["A"].numpy() @ operands["B"].numpy())


class TestCompiledFunction:
    def test_repr(self, operands):
        fn = CompiledFunction(lambda a: a @ a, TF_PROFILE)
        assert "tfsim" in repr(fn)

    def test_pipeline_log_available(self, operands):
        @tfsim.function
        def f(a):
            return a @ a + a @ a

        concrete = f.get_concrete(operands["A"])
        assert "cse" in concrete.pipeline_log
