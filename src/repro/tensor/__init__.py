"""Dense tensor substrate shared by both simulated frameworks.

A :class:`~repro.tensor.tensor.Tensor` is a thin, immutable-by-convention
wrapper around a numpy array that additionally carries a set of *matrix
properties* (triangular, symmetric, diagonal, ...).  The properties are the
information a "linear-algebra-aware" framework would need to dispatch the
specialized kernels of Experiment 3; the simulated frameworks deliberately
ignore them on the default path, exactly like TF/PyT.
"""

from .dtypes import DEFAULT_DTYPE, normalize_dtype
from .properties import (
    ALL_PROPERTIES,
    IMPLICATIONS,
    Property,
    PropertySet,
    closure,
    detect_properties,
    verify_property,
)
from .tensor import Tensor
from .creation import (
    block_diag,
    concat,
    diag,
    eye,
    from_numpy,
    ones,
    tridiag,
    zeros,
)
from .random import (
    random_diagonal,
    random_general,
    random_lower_triangular,
    random_orthogonal,
    random_spd,
    random_symmetric,
    random_tridiagonal,
    random_upper_triangular,
    random_vector,
)

__all__ = [
    "DEFAULT_DTYPE",
    "normalize_dtype",
    "Property",
    "PropertySet",
    "ALL_PROPERTIES",
    "IMPLICATIONS",
    "closure",
    "detect_properties",
    "verify_property",
    "Tensor",
    "from_numpy",
    "zeros",
    "ones",
    "eye",
    "diag",
    "tridiag",
    "block_diag",
    "concat",
    "random_general",
    "random_diagonal",
    "random_vector",
    "random_lower_triangular",
    "random_upper_triangular",
    "random_symmetric",
    "random_spd",
    "random_orthogonal",
    "random_tridiagonal",
]
