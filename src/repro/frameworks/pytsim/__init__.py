"""pytsim — the PyTorch stand-in.

Public API mirrors the PyTorch surface the paper's benchmark code touches:

* ``pytsim.jit.script`` — the graph-mode decorator (``@torch.jit.script``);
* ``pytsim.tensor`` / ``eye`` / ``zeros`` / ``ones`` — tensor creation;
* ``pytsim.matmul`` / ``t`` / ``add`` / ``sub`` / ``mul`` / ``neg`` /
  ``cat`` — eager-or-traced ops (operators work too);
* ``pytsim.linalg.multi_dot`` — the chain solver the paper points users to
  (Fig. 5): solves the matrix-chain problem by dynamic programming and
  evaluates in the minimum-FLOP order.

pytsim has **no** ``tridiagonal_matmul`` — matching the paper's Table IV
("n.a." in the PyT optimized column).
"""

from . import jit
from . import linalg
from .tensor_api import (
    add,
    cat,
    eye,
    matmul,
    mul,
    neg,
    ones,
    sub,
    t,
    tensor,
    zeros,
)

__all__ = [
    "jit",
    "linalg",
    "tensor",
    "eye",
    "zeros",
    "ones",
    "matmul",
    "t",
    "add",
    "sub",
    "mul",
    "neg",
    "cat",
]
