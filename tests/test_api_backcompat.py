"""Back-compat of the PR-1 surface through the Session shim.

The redesign reworked ``frameworks.common.CompiledFunction`` into a thin
shim over ``repro.api``; these tests pin that the shim is *bit-identical*
to the PR-1 behaviour — outputs and ``ExecutionReport`` s — and that the
deprecation of ``default_plan_cache`` fires exactly once.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import api
from repro.frameworks import pytsim, tfsim
from repro.frameworks.common import (
    PYT_PROFILE,
    TF_PROFILE,
    CompiledFunction,
    ConcreteFunction,
)
from repro.ir import trace
from repro.passes import aware_pipeline, default_pipeline
from repro.runtime import compile_plan


def _pr1_reference(fn, args, *, aware=False):
    """The PR-1 code path, reconstructed literally: trace → pipeline →
    compile_plan → execute (no session, no shared cache)."""
    graph = trace(fn, list(args))
    pipeline = aware_pipeline() if aware else default_pipeline()
    optimized = pipeline.run(graph)
    plan = compile_plan(optimized)
    return plan.execute([a.data for a in args])


class TestBitIdenticalOutputs:
    def test_tfsim_function_matches_pr1_path(self, operands):
        a, b = operands["A"], operands["B"]

        def expr(p, q):
            return tfsim.transpose(tfsim.transpose(p) @ q) @ (tfsim.transpose(p) @ q)

        ref_outs, ref_report = _pr1_reference(expr, [a, b])

        @tfsim.function
        def f(p, q):
            return tfsim.transpose(tfsim.transpose(p) @ q) @ (tfsim.transpose(p) @ q)

        out = f(a, b)
        assert out.numpy().tobytes() == ref_outs[0].tobytes()
        assert f.last_report == ref_report

    def test_pytsim_script_matches_pr1_path(self, operands):
        a, b = operands["A"], operands["B"]

        def expr(p, q):
            return (p.T @ q).T @ p.T @ q

        ref_outs, ref_report = _pr1_reference(expr, [a, b])

        @pytsim.jit.script
        def g(p, q):
            return (p.T @ q).T @ p.T @ q

        out = g(a, b)
        assert out.numpy().tobytes() == ref_outs[0].tobytes()
        assert g.last_report == ref_report

    def test_aware_decorator_matches_pr1_path(self, operands):
        h, x = operands["H"], operands["x"]

        def expr(p, q):
            return tfsim.transpose(p) @ p @ q

        ref_outs, ref_report = _pr1_reference(expr, [h, x], aware=True)

        @tfsim.function(aware=True)
        def f(p, q):
            return tfsim.transpose(p) @ p @ q

        out = f(h, x)
        assert out.numpy().tobytes() == ref_outs[0].tobytes()
        assert f.last_report == ref_report

    def test_shim_matches_explicit_session(self, operands):
        """The decorator (ambient default session) and an explicit
        session produce identical results and reports."""
        a, b = operands["A"], operands["B"]

        @tfsim.function
        def f(p, q):
            return p @ q + p

        via_shim = f(a, b)
        shim_report = f.last_report

        g = api.Session().compile(lambda p, q: p @ q + p, backend="tfsim")
        via_session = g(a, b)
        assert via_shim.numpy().tobytes() == via_session.numpy().tobytes()
        assert shim_report == g.last_report

    def test_interpret_parity_preserved(self, operands):
        a, b = operands["A"], operands["B"]

        @tfsim.function
        def f(p, q):
            return (p.T @ q).T @ (p.T @ q)

        compiled = f(a, b)
        interpreted = f.interpret(a, b)
        assert compiled.numpy().tobytes() == interpreted.numpy().tobytes()


class TestShimSurface:
    def test_compiled_function_is_api_compiled(self):
        fn = CompiledFunction(lambda a: a @ a, TF_PROFILE)
        assert isinstance(fn, api.Compiled)
        assert "tfsim" in repr(fn)

    def test_concrete_alias(self):
        assert ConcreteFunction is api.Concrete

    def test_profiles_are_registered_backends(self):
        assert api.backend("tfsim") is TF_PROFILE
        assert api.backend("pytsim") is PYT_PROFILE

    def test_frameworks_export_framework_profile(self):
        from repro.frameworks import FrameworkProfile

        assert FrameworkProfile is api.FrameworkProfile

    def test_legacy_attributes_preserved(self, operands):
        a = operands["A"]

        @tfsim.function(aware=True)
        def f(p):
            return p @ p

        assert f.aware is True
        f(a)
        f(a)
        assert f.trace_count == 1
        assert f.last_trace_seconds > 0
        assert f.last_report is not None
        assert f.profile is TF_PROFILE

    def test_no_production_default_plan_cache_imports(self):
        """Acceptance criterion: no production call site of
        ``default_plan_cache`` outside the deprecation shim itself."""
        import pathlib
        import re

        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        offenders = []
        for path in src.rglob("*.py"):
            if path.name == "cache.py" and path.parent.name == "runtime":
                continue  # the shim's home
            text = path.read_text()
            for lineno, line in enumerate(text.splitlines(), 1):
                if re.search(r"\bdefault_plan_cache\b", line) and \
                        "_default_plan_cache" not in line:
                    # the runtime package re-export stays (API surface)
                    if path.name == "__init__.py" and \
                            path.parent.name == "runtime":
                        continue
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)


class TestDeprecation:
    def test_default_plan_cache_warns_exactly_once(self, monkeypatch):
        from repro.runtime import cache as cache_module
        from repro.runtime import default_plan_cache

        monkeypatch.setattr(cache_module, "_deprecation_warned", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = default_plan_cache()
            second = default_plan_cache()
        assert first is second is cache_module._default_plan_cache()
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "Session" in str(deprecations[0].message)

    def test_internal_accessor_never_warns(self):
        from repro.runtime import cache as cache_module

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cache_module._default_plan_cache()
        assert not caught


class TestMeasureModeRegression:
    def test_unknown_mode_raises_value_error(self, operands):
        """Regression: an unknown ``mode=`` must raise ValueError, not
        fall through (or hide behind a non-ValueError library type)."""
        from repro.experiments._measure import time_compiled

        @tfsim.function
        def f(p):
            return p @ p

        with pytest.raises(ValueError, match="unknown execution mode"):
            time_compiled(f, [operands["A"]], label="x", mode="warp-speed")

    def test_known_modes_still_measure(self, operands, tiny_bench_config):
        from repro.experiments._measure import time_compiled

        @tfsim.function
        def f(p):
            return p @ p

        for mode in ("graph", "runtime", "interpreter"):
            sample = time_compiled(f, [operands["A"]], label=mode,
                                   repetitions=2, mode=mode)
            assert sample.best > 0

    def test_reports_identical_across_shim_and_session_batch(self, operands):
        """ExecutionReports from the decorator path and session.run_batch
        (record=True) agree call-for-call."""
        a, b = operands["A"], operands["B"]

        @tfsim.function
        def f(p, q):
            return (p.T @ q).T @ (p.T @ q)

        f(a, b)
        session = api.Session()
        g = session.compile(lambda p, q: (p.T @ q).T @ (p.T @ q),
                            backend="tfsim")
        batch = session.run_batch(g, [[a, b]] * 2, record=True)
        for report in batch.reports:
            assert report == f.last_report
