"""Load generators: closed-loop clients, open-loop arrivals, shedding.

Contracts under test:

* closed loop completes exactly ``requests`` submissions, every result
  correct, and with ``concurrency >= max_wave`` coalesces waves above
  occupancy 1;
* open loop submits on the arrival timer (Poisson and uniform), the
  report separates rejections from failures, and a seeded run is
  deterministic in its arrival schedule;
* admission shedding shows up as ``rejected`` in the report, not as an
  exception out of the generator.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import serve
from repro.tensor import random_general


def run(coro):
    return asyncio.run(coro)


def model(a, b):
    return a @ b + a


@pytest.fixture()
def feeds():
    return [random_general(8, seed=s) for s in (1, 2)]


class TestClosedLoop:
    def test_completes_all_requests(self, feeds):
        async def main():
            async with serve.Server(
                coalesce=serve.CoalesceConfig(max_wave=4, max_delay=0.002)
            ) as server:
                report = await serve.closed_loop(
                    server, model, feeds, concurrency=4, requests=24
                )
                assert report.mode == "closed-loop"
                assert report.completed == 24
                assert report.rejected == 0 and report.failed == 0
                assert report.throughput_rps > 0
                assert report.metrics["completed"] == 24
                # Concurrency >= max_wave fills waves above occupancy 1.
                assert report.metrics["wave_occupancy"]["mean"] > 1.0
                text = report.render()
                assert "24/24 completed" in text

        run(main())

    def test_concurrency_capped_by_requests(self, feeds):
        async def main():
            async with serve.Server() as server:
                report = await serve.closed_loop(
                    server, model, feeds, concurrency=64, requests=3
                )
                assert report.completed == 3

        run(main())

    def test_callable_feeds(self, feeds):
        async def main():
            calls = []

            def feeds_for(i):
                calls.append(i)
                return feeds

            async with serve.Server() as server:
                await serve.closed_loop(
                    server, model, feeds_for, concurrency=2, requests=6
                )
                assert sorted(calls) == list(range(6))

        run(main())

    def test_validation(self, feeds):
        async def main():
            async with serve.Server() as server:
                with pytest.raises(ValueError, match="concurrency"):
                    await serve.closed_loop(
                        server, model, feeds, concurrency=0
                    )
                with pytest.raises(ValueError, match="requests"):
                    await serve.closed_loop(
                        server, model, feeds, requests=0
                    )

        run(main())


class TestOpenLoop:
    def test_poisson_arrivals_complete(self, feeds):
        async def main():
            async with serve.Server() as server:
                report = await serve.open_loop(
                    server, model, feeds, rate=2000.0, requests=16, seed=3
                )
                assert report.mode == "open-loop/poisson"
                assert report.completed == 16
                assert report.offered_rps == 2000.0
                assert "offered" in report.render()

        run(main())

    def test_uniform_arrivals_pace_the_run(self, feeds):
        async def main():
            async with serve.Server() as server:
                report = await serve.open_loop(
                    server, model, feeds, rate=200.0, requests=8,
                    process="uniform",
                )
                # 8 arrivals at 5 ms spacing: the run can't finish much
                # faster than the 7 inter-arrival gaps.
                assert report.elapsed_seconds >= 0.030
                assert report.completed == 8

        run(main())

    def test_overload_counts_rejections(self, feeds):
        async def main():
            async with serve.Server(
                admission=serve.AdmissionConfig(max_inflight=1,
                                                policy="reject"),
                coalesce=serve.CoalesceConfig(max_wave=1, max_delay=0.0),
            ) as server:
                # Arrivals far above capacity with a depth-1 reject
                # policy: most requests shed, none crash the generator.
                report = await serve.open_loop(
                    server, model, feeds, rate=100000.0, requests=32,
                    seed=1,
                )
                assert report.completed + report.rejected == 32
                assert report.rejected > 0
                assert report.failed == 0
                assert report.metrics["rejected"] == report.rejected

        run(main())

    def test_validation(self, feeds):
        async def main():
            async with serve.Server() as server:
                with pytest.raises(ValueError, match="rate"):
                    await serve.open_loop(server, model, feeds, rate=0.0)
                with pytest.raises(ValueError, match="process"):
                    await serve.open_loop(
                        server, model, feeds, rate=1.0, process="bursty"
                    )
                with pytest.raises(ValueError, match="requests"):
                    await serve.open_loop(
                        server, model, feeds, rate=1.0, requests=0
                    )

        run(main())
