"""Partial-operand-access rewrites (the fix for Experiment 5's second test).

The paper's recommended implementations:

* ``(A + B)[2, 2]  → A[2, 2] + B[2, 2]``  (O(n²) sum → O(1)),
* ``(A @ B)[2, 2]  → dot(A[2, :], B[:, 2])``  (O(n³) product → O(n)).

Neither framework performs this swap of slicing with the producing
operation; this opt-in pass does, for any rectangular slice that is
strictly smaller than the produced operand (the guard keeps full-width
slices untouched).  Transpose flags on matmuls are handled by slicing the
opposite axis of the flagged operand.
"""

from __future__ import annotations

from ..ir import builder
from ..ir.graph import Graph
from ..ir.node import Node
from .base import GraphPass


def _sel_extent(sel: object, dim: int) -> int:
    if sel is None:
        return dim
    if isinstance(sel, int):
        return 1
    start, stop = sel
    start = 0 if start is None else (start + dim if start < 0 else start)
    stop = dim if stop is None else (stop + dim if stop < 0 else stop)
    return stop - start


class PartialOperandAccess(GraphPass):
    """Push slices through add/sub/scale/transpose/matmul producers."""

    name = "partial_access"

    def apply(self, graph: Graph) -> Graph:
        graph = self.transform_loop_bodies(graph)
        consumers = graph.consumers()
        out_ids = {id(o) for o in graph.outputs}
        # Only push a slice into a producer that exists solely to feed it;
        # a producer with other consumers must be materialized anyway, so
        # slicing it cheaply afterwards is already optimal.
        exclusive = {
            nid for nid, cons in consumers.items() if len(cons) == 1
        } - out_ids

        def fn(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            if node.op != "slice":
                return None
            (src,) = new_inputs
            orig_src = node.inputs[0]
            if id(orig_src) not in exclusive:
                return None
            rows = node.attrs.get("rows")
            cols = node.attrs.get("cols")
            r = _sel_extent(rows, src.shape[0])
            c = _sel_extent(cols, src.shape[1])
            if r * c >= src.shape[0] * src.shape[1]:
                return None  # not actually partial

            if src.op in ("add", "sub"):
                self._count()
                a, b = src.inputs
                combine = builder.add if src.op == "add" else builder.sub
                return combine(
                    builder.slice_(a, rows, cols), builder.slice_(b, rows, cols)
                )
            if src.op == "scale":
                self._count()
                return builder.scale(
                    builder.slice_(src.inputs[0], rows, cols),
                    float(src.attrs["alpha"]),
                )
            if src.op == "transpose":
                self._count()
                inner = builder.slice_(src.inputs[0], cols, rows)
                return builder.transpose(inner)
            if src.op == "matmul" and not src.attrs.get("kernel"):
                self._count()
                a, b = src.inputs
                ta = bool(src.attrs.get("trans_a"))
                tb = bool(src.attrs.get("trans_b"))
                # Rows of the product select rows of op(A): with trans_a
                # they live on A's columns.  Columns select op(B) columns.
                a_sliced = (
                    builder.slice_(a, None, rows) if ta
                    else builder.slice_(a, rows, None)
                )
                b_sliced = (
                    builder.slice_(b, cols, None) if tb
                    else builder.slice_(b, None, cols)
                )
                return builder.matmul(a_sliced, b_sliced, trans_a=ta, trans_b=tb)
            return None

        prev = -1
        while self.last_stats.rewrites != prev:
            prev = self.last_stats.rewrites
            consumers = graph.consumers()
            exclusive = {
                nid for nid, cons in consumers.items() if len(cons) == 1
            } - {id(o) for o in graph.outputs}
            graph = graph.rewrite(fn)
        return graph
