"""Smoke + structure tests for every experiment module.

Timings are machine-dependent, so these tests assert (a) every experiment
runs end to end at a small size, (b) tables have the paper's rows/columns,
and (c) the *robust* relationships hold — FLOP-count-backed ratios that do
not depend on the machine (kernel counts, DP choices, cell presence).
Timing-ratio assertions live in the benchmark suite, at realistic sizes.
"""

import pytest

import repro.experiments  # noqa: F401 - registration
from repro.bench.registry import EXPERIMENTS
from repro.config import override
from repro.errors import ConfigError
from repro.experiments.sizes import experiment_size

SMOKE_N = 96
SMOKE_REPS = 2


@pytest.fixture(autouse=True)
def _fast_bench():
    with override(repetitions=SMOKE_REPS, warmup=0):
        yield


class TestSizes:
    def test_default_from_config(self):
        with override(problem_size=500):
            assert experiment_size(None) == 500

    def test_argument_wins(self):
        assert experiment_size(200) == 200

    def test_odd_rounded_up(self):
        assert experiment_size(201) == 202

    def test_floor_enforced(self):
        with pytest.raises(ConfigError):
            experiment_size(10)


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_runs(name):
    info = EXPERIMENTS[name]
    table = info.fn(n=SMOKE_N, repetitions=SMOKE_REPS)
    assert table.rows, name
    rendered = table.render()
    assert table.title in rendered
    # every row has at least one populated cell
    for label, cells in table.rows:
        assert cells, label


class TestTable1Structure:
    @pytest.fixture(scope="class")
    def table(self):
        with override(repetitions=SMOKE_REPS, warmup=0):
            return EXPERIMENTS["table1"].fn(n=SMOKE_N, repetitions=SMOKE_REPS)

    def test_rows(self, table):
        labels = [r[0] for r in table.rows]
        assert labels == ["AᵀB", "(AᵀB)ᵀ(AᵀB)"]

    def test_mkl_c_absent_for_gram(self, table):
        assert table.cell("(AᵀB)ᵀ(AᵀB)", "MKL-C").text == "–"

    def test_all_timings_positive(self, table):
        for col in ("TF eager", "TF graph", "PyT eager", "PyT graph"):
            assert table.seconds("AᵀB", col) > 0


class TestExp1Structure:
    @pytest.fixture(scope="class")
    def table(self):
        with override(repetitions=SMOKE_REPS, warmup=0):
            return EXPERIMENTS["exp1"].fn(n=SMOKE_N, repetitions=SMOKE_REPS)

    def test_gemm_counts_match_paper(self, table):
        """The structural heart of Table II: 1/1/2/3 GEMMs."""
        expected = {
            "AᵀB": "1",
            "AᵀB + AᵀB": "1",
            "(AᵀB)ᵀ(AᵀB)": "2",
            "(AᵀB)ᵀAᵀB": "3",
        }
        for label, count in expected.items():
            assert table.cell(label, "TF GEMMs").text == count, label
            assert table.cell(label, "PyT GEMMs").text == count, label


class TestExp2Structure:
    def test_multi_dot_only_for_unparenthesized(self):
        with override(repetitions=SMOKE_REPS, warmup=0):
            table = EXPERIMENTS["exp2"].fn(n=SMOKE_N, repetitions=SMOKE_REPS)
        assert table.cell("HᵀHx", "PyT multi_dot").seconds is not None
        assert table.cell("Hᵀ(Hx)", "PyT multi_dot").text == "–"


class TestExp3Structure:
    def test_na_cells_match_paper(self):
        with override(repetitions=SMOKE_REPS, warmup=0):
            table = EXPERIMENTS["exp3"].fn(n=SMOKE_N, repetitions=SMOKE_REPS)
        # PyT has no optimized entry point anywhere (Table IV)
        for label, _ in table.rows:
            assert table.cell(label, "PyT optim").text == "n.a."
        # TF's tridiagonal_matmul exists only for TB and DB
        assert table.cell("LB", "TF optim").text == "n.a."
        assert table.cell("TB", "TF optim").seconds is not None
        assert table.cell("DB", "TF optim").seconds is not None


class TestFig1Structure:
    def test_flops_ordering(self):
        """Model FLOPs must rank variant1 ≫ variant2 > variant3."""
        with override(repetitions=SMOKE_REPS, warmup=0):
            table = EXPERIMENTS["fig1"].fn(n=SMOKE_N, repetitions=SMOKE_REPS)
        flops = {}
        for label, cells in table.rows:
            text = cells["model FLOPs"].text
            if text and text != "–":
                flops[label.split(":")[0]] = int(text.replace(",", ""))
        assert flops["Variant 1"] > 10 * flops["Variant 2"]
        assert flops["Variant 3"] < flops["Variant 2"]
        # auto-derived best ties variant 3 (within the scale-op bookkeeping)
        assert flops["derivation-graph best (auto)"] <= flops["Variant 2"]


class TestFig7Structure:
    def test_five_variants_and_dp_choice(self):
        with override(repetitions=SMOKE_REPS, warmup=0):
            table = EXPERIMENTS["fig7"].fn(n=SMOKE_N, repetitions=SMOKE_REPS)
        assert len(table.rows) == 5
        dp_marks = [
            cells["optimal?"].text for _, cells in table.rows
        ].count("← DP choice")
        assert dp_marks == 1
        # first row (sorted cheapest) carries the DP mark
        assert table.rows[0][1]["optimal?"].text == "← DP choice"


class TestAblationStructure:
    def test_aware_flops_never_higher(self):
        with override(repetitions=SMOKE_REPS, warmup=0):
            table = EXPERIMENTS["ablation"].fn(n=SMOKE_N, repetitions=SMOKE_REPS)
        for label, cells in table.rows:
            fd = int(cells["FLOPs default"].text.replace(",", ""))
            fa = int(cells["FLOPs aware"].text.replace(",", ""))
            assert fa <= fd, label

    def test_known_big_wins(self):
        with override(repetitions=SMOKE_REPS, warmup=0):
            table = EXPERIMENTS["ablation"].fn(n=SMOKE_N, repetitions=SMOKE_REPS)
        for label in ("chain HᵀHx", "distributivity (A−HᵀH)x",
                      "partial (AB)[2,2]", "orthogonal QᵀQA"):
            fd = int(table.cell(label, "FLOPs default").text.replace(",", ""))
            fa = int(table.cell(label, "FLOPs aware").text.replace(",", ""))
            assert fa * 10 <= fd, label


class TestCLI:
    def test_list_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "exp1" in out and "Table II" in out

    def test_graphs_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["graphs", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out and "Fig. 4" in out

    def test_run_with_cache_stats_flag(self, capsys):
        from repro.experiments.cli import main

        with override(repetitions=SMOKE_REPS, warmup=0):
            code = main(["run", "fig7", "--n", str(SMOKE_N), "--reps", "2",
                         "--cache-stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan-cache statistics" in out
        assert "misses" in out and "evictions" in out

    def test_cache_stats_command(self, capsys):
        from repro.experiments.cli import main

        with override(repetitions=SMOKE_REPS, warmup=0):
            code = main(["cache-stats", "fig7", "--n", str(SMOKE_N),
                         "--reps", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan cache:" in out
        assert "hits" in out and "misses" in out

    def test_run_single_with_json(self, tmp_path, capsys):
        import json

        from repro.experiments.cli import main

        out_json = tmp_path / "out.json"
        out_md = tmp_path / "out.md"
        with override(repetitions=SMOKE_REPS, warmup=0):
            code = main([
                "run", "fig7", "--n", str(SMOKE_N), "--reps", "2",
                "--json", str(out_json), "--markdown", str(out_md),
            ])
        assert code == 0
        payload = json.loads(out_json.read_text())
        assert payload[0]["rows"]
        assert out_md.read_text().startswith("###")
