"""Experiment 5 (Table VI) — Code Motion.

Two sub-experiments, graph mode:

* **Loop-invariant code motion** (Fig. 8): update ``AB`` with three outer
  products.  Naive recomputes ``A@B`` inside the loop; recommended hoists
  it.  Expectation: *equal times* — the Python loop unrolls at trace time
  and CSE deduplicates the invariant product (the one positive finding).
* **Partial operand access** (Fig. 9): only element [2,2] of ``A+B`` /
  ``A@B`` is needed.  Naive computes the full operation then slices;
  recommended slices first.  Expectation: naive ≫ recommended — the
  frameworks do *not* swap slicing with the producing op.
"""

from __future__ import annotations

from ..bench.registry import register_experiment
from ..bench.reporting import ExperimentTable
from ..frameworks import pytsim, tfsim
from ._measure import time_compiled
from .sizes import experiment_size
from .workloads import Workloads


def _functions():
    # -- loop-invariant code motion (3 unrolled iterations, Fig. 8) -----------

    @tfsim.function
    def tf_loop_naive(a, b, v1, v2, v3):
        outs = []
        for v in (v1, v2, v3):
            outs.append(a @ b + v @ tfsim.transpose(v))
        return outs

    @pytsim.jit.script
    def pyt_loop_naive(a, b, v1, v2, v3):
        outs = []
        for v in (v1, v2, v3):
            outs.append(a @ b + v @ v.T)
        return outs

    @tfsim.function
    def tf_loop_reco(a, b, v1, v2, v3):
        tmp = a @ b
        return [tmp + v @ tfsim.transpose(v) for v in (v1, v2, v3)]

    @pytsim.jit.script
    def pyt_loop_reco(a, b, v1, v2, v3):
        tmp = a @ b
        return [tmp + v @ v.T for v in (v1, v2, v3)]

    # -- partial operand access (Fig. 9) ------------------------------------------

    @tfsim.function
    def tf_sum_naive(a, b):
        return (a + b)[2, 2]

    @pytsim.jit.script
    def pyt_sum_naive(a, b):
        return (a + b)[2, 2]

    @tfsim.function
    def tf_sum_reco(a, b):
        return a[2, 2] + b[2, 2]

    @pytsim.jit.script
    def pyt_sum_reco(a, b):
        return a[2, 2] + b[2, 2]

    @tfsim.function
    def tf_prod_naive(a, b):
        return (a @ b)[2, 2]

    @pytsim.jit.script
    def pyt_prod_naive(a, b):
        return (a @ b)[2, 2]

    @tfsim.function
    def tf_prod_reco(a, b):
        return a[2, :] @ b[:, 2]

    @pytsim.jit.script
    def pyt_prod_reco(a, b):
        return a[2, :] @ b[:, 2]

    return {
        "loop": (tf_loop_naive, tf_loop_reco, pyt_loop_naive, pyt_loop_reco),
        "sum": (tf_sum_naive, tf_sum_reco, pyt_sum_naive, pyt_sum_reco),
        "prod": (tf_prod_naive, tf_prod_reco, pyt_prod_naive, pyt_prod_reco),
    }


@register_experiment(
    "exp5",
    "Table VI",
    "code motion: loop-invariant hoisting (works) and partial operand access (doesn't)",
)
def run(n: int | None = None, repetitions: int | None = None) -> ExperimentTable:
    n = experiment_size(n)
    w = Workloads(n)
    a, b = w.general(0), w.general(1)
    v1, v2, v3 = w.vector(0), w.vector(1), w.vector(2)
    fns = _functions()

    table = ExperimentTable(
        title=f"Table VI: code motion, execution time (s), n = {n}",
        columns=["TF naive", "TF reco", "PyT naive", "PyT reco"],
    )

    rows = [
        ("Loop-inv code motion", "loop", [a, b, v1, v2, v3]),
        ("Partial-op access (sum)", "sum", [a, b]),
        ("Partial-op access (product)", "prod", [a, b]),
    ]
    for label, key, args in rows:
        tf_naive, tf_reco, pyt_naive, pyt_reco = fns[key]
        t1 = time_compiled(tf_naive, args, label="tf_naive",
                           repetitions=repetitions)
        t2 = time_compiled(tf_reco, args, label="tf_reco",
                           repetitions=repetitions)
        t3 = time_compiled(pyt_naive, args, label="pyt_naive",
                           repetitions=repetitions)
        t4 = time_compiled(pyt_reco, args, label="pyt_reco",
                           repetitions=repetitions)
        table.add_row(
            label,
            TF_naive=t1.best,
            TF_reco=t2.best,
            PyT_naive=t3.best,
            PyT_reco=t4.best,
        )
    table.notes.append(
        "expected shape: loop row naive ≈ reco (unroll + CSE hoists the "
        "invariant product); partial-access rows naive ≫ reco"
    )
    return table
