"""Derivation-graph engine — the Linnea analogue (paper Sec. III-D).

The paper's discussion of Experiment 4: *"Derivation graphs can be used to
systematically rewrite and explore the variants of an input expression...
Linnea is a linear algebra code generator that uses such derivation graphs
to generate variants of input expressions and find optimal programs in
terms of FLOPs.  We remark that derivation graphs can serve as one of the
top level intermediate representations in TF or PyT."*

This package is that subsystem, built from scratch:

``expr``        A symbolic matrix-expression algebra (n-ary products and
                sums, transposes pushed to leaves, scales hoisted) with a
                cost-neutral canonical form.
``rules``       Rewrite rules: distributivity (expand/factor), orthogonal
                cancellation, identity/zero elimination.
``cost``        FLOP cost of an expression, with n-ary products costed by
                the matrix-chain DP (so association is an optimization
                detail, not part of expression identity — as in Linnea).
``derivation``  Breadth-first derivation-graph search over rule
                applications (networkx DiGraph), returning the cheapest
                variant and the rule path that reaches it.
``generator``   Convenience front end: enumerate variants of an input
                expression sorted by FLOPs (regenerates Fig. 1's three
                image-restoration variants automatically).
"""

from .expr import Add, Expr, Identity, MatMul, Scale, Symbol, Transpose, Zero
from .cost import expr_flops
from .rules import DEFAULT_RULES, Rule, RuleApplication
from .derivation import DerivationGraph, DerivationResult
from .generator import best_variant, variants
from .bridge import BRIDGED_OPS, expr_to_graph, graph_to_expr

__all__ = [
    "Expr",
    "Symbol",
    "Identity",
    "Zero",
    "Transpose",
    "MatMul",
    "Add",
    "Scale",
    "expr_flops",
    "Rule",
    "RuleApplication",
    "DEFAULT_RULES",
    "DerivationGraph",
    "DerivationResult",
    "variants",
    "best_variant",
    "graph_to_expr",
    "expr_to_graph",
    "BRIDGED_OPS",
]
