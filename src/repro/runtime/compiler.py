"""Graph → Plan compilation.

The compiler performs, once, everything ``Interpreter.run`` redoes per
call:

* **Schedule** — the topological order is frozen into a flat instruction
  list (loop bodies compile into nested sub-plans).
* **Kernel selection** — the shape/flag/hint dispatch of the interpreter's
  ``matmul`` handler (DOT/GEMV/GEMM, and the property-dispatch hints
  TRMM/SYRK/SYMM/diag/tridiag/zero/identity) is resolved here; each
  instruction carries a closure that calls the chosen BLAS kernel
  directly, plus the pre-built :class:`KernelCall` records (dims and
  FLOPs are static, so the modelled-cost accounting costs nothing at
  execution time).  Ops with a destination-aware kernel variant
  additionally carry an ``fn_out`` closure writing into a caller-provided
  buffer — the hook :class:`~repro.runtime.plan.PlanArena` execution uses
  to stay allocation-free.
* **Buffer table** — liveness analysis assigns every value a slot; slots
  of dead temporaries are recycled *shape-aware* (a slot only ever holds
  values of one shape — what lets an arena back each slot with a single
  preallocated buffer; inputs, constants and graph outputs stay live for
  the whole run, matching the interpreter's memory model).
* **Fusion** (opt-in, ``fusion=True``) — a post-schedule pass over the
  finished instruction stream (:mod:`repro.runtime.fusion`): adjacent
  single-consumer elementwise chains collapse into one fused closure, and
  a ``scale``/``neg`` trailing a dense GEMM folds into the GEMM's alpha.
  Outputs stay bit-identical; reports keep FLOP totals and peak bytes,
  with fused sites represented as combined kernel-call records (the
  parity contract in :mod:`repro.runtime.plan`).
* **Constant preloading** — ``const`` payloads are captured into the
  instruction at compile time; with ``fold_constants=True`` the
  :class:`~repro.passes.constant_folding.ConstantFolding` pass
  pre-evaluates const-only sub-DAGs before compilation (note: the plan
  then mirrors the *folded* program, so report parity is with the
  Interpreter on the folded graph).

The executor closures below must stay in lock-step with the corresponding
``Interpreter._op_*`` handlers: the parity suite executes both on every
workload and compares outputs bit-for-bit and reports field-for-field.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable

import numpy as np

from ..errors import GraphError, KernelError
from ..ir.graph import Graph
from ..ir.interpreter import KernelCall
from ..ir.node import Node
from ..kernels import blas1, blas2, blas3, special
from ..kernels.flops import kernel_flops
from .plan import ExecFn, Instruction, LoopFn, OutFn, Plan, PlanInput
from .signature import graph_signature


def _call(kernel: str, dims: tuple[int, ...], node_op: str) -> KernelCall:
    return KernelCall(kernel, dims, kernel_flops(kernel, *dims), node_op)


def _call_free(kernel: str, node_op: str) -> KernelCall:
    return KernelCall(kernel, (), 0, node_op)


@dataclasses.dataclass(frozen=True)
class _Op:
    """What one ``_compile_*`` hands back to the scheduling loop."""

    fn: ExecFn
    calls: tuple[KernelCall, ...]
    fn_out: OutFn | None = None
    kind: str | None = None
    params: tuple = ()
    #: Arena-aware loop executor + its compiled body (``loop`` ops only).
    fn_loop: "LoopFn | None" = None
    sub_plan: "Plan | None" = None
    #: The destination-aware kernel needs a result-shaped workspace; the
    #: scheduler assigns a shared per-shape scratch slot.
    needs_scratch: bool = False
    #: Preferred memory order of the destination (and scratch) buffer.
    #: "F" is BLAS's layout; the tridiagonal row-scaling kernel declares
    #: "C" — its offset row slices degenerate into strided inner loops
    #: against an F destination (measured ~2x slower than allocating).
    out_order: str = "F"
    #: Per-operand layout preference used to pick *input-slot* staging
    #: order: "F"/"C" votes, ``None`` abstains.  ``None`` for the whole
    #: tuple means "vote F for every operand" (the safe default — mixed
    #: layouts put ufuncs on buffering paths).
    arg_orders: tuple | None = None


# -- per-op compilation -------------------------------------------------------
#
# Each _compile_* returns an _Op: the executor closure(s) and the static
# kernel-call records appended per execution.


def _compile_const(node: Node) -> _Op:
    value = node.attrs["value"]

    def run(args, report, record):
        return value

    return _Op(run, (), kind="const")


def _compile_transpose(node: Node) -> _Op:
    def run(args, report, record):
        return np.ascontiguousarray(args[0].T)

    def run_out(args, out):
        np.copyto(out, args[0].T)
        return out

    return _Op(run, (_call("transpose", node.inputs[0].shape, node.op),), run_out)


def _compile_add(node: Node) -> _Op:
    def run(args, report, record):
        return args[0] + args[1]

    def run_out(args, out):
        return blas1.add(args[0], args[1], out=out)

    return _Op(
        run,
        (_call("add", node.inputs[0].shape, node.op),),
        run_out,
        kind="ew",
        params=("add",),
    )


def _compile_sub(node: Node) -> _Op:
    def run(args, report, record):
        return args[0] - args[1]

    def run_out(args, out):
        return blas1.sub(args[0], args[1], out=out)

    return _Op(
        run,
        (_call("sub", node.inputs[0].shape, node.op),),
        run_out,
        kind="ew",
        params=("sub",),
    )


def _compile_neg(node: Node) -> _Op:
    def run(args, report, record):
        return -args[0]

    def run_out(args, out):
        return blas1.neg(args[0], out=out)

    return _Op(
        run,
        (_call("scale", node.inputs[0].shape, node.op),),
        run_out,
        kind="ew",
        params=("neg",),
    )


def _compile_scale(node: Node) -> _Op:
    alpha = node.attrs["alpha"]

    def run(args, report, record):
        a = args[0]
        return a * a.dtype.type(alpha)

    def run_out(args, out):
        return blas1.scal(alpha, args[0], out=out)

    return _Op(
        run,
        (_call("scale", node.inputs[0].shape, node.op),),
        run_out,
        kind="ew",
        params=("scale", alpha),
    )


def _dot_fns(length_hint: int) -> tuple[ExecFn, OutFn]:
    def run(args, report, record):
        a, b = args
        av = np.ascontiguousarray(a).ravel()
        bv = np.ascontiguousarray(b).ravel()
        return np.array([[blas1.dot(av, bv)]], dtype=a.dtype)

    def run_out(args, out):
        a, b = args
        av = np.ascontiguousarray(a).ravel()
        bv = np.ascontiguousarray(b).ravel()
        out[0, 0] = blas1.dot(av, bv)
        return out

    return run, run_out


def _compile_dot(node: Node) -> _Op:
    a_shape = node.inputs[0].shape
    length = a_shape[0] * a_shape[1]
    run, run_out = _dot_fns(length)
    return _Op(run, (_call("dot", (length,), node.op),), run_out)


def _compile_slice(node: Node) -> _Op:
    sel = []
    for key in ("rows", "cols"):
        s = node.attrs.get(key)
        if s is None:
            sel.append(slice(None))
        elif isinstance(s, int):
            sel.append(slice(s, s + 1) if s != -1 else slice(s, None))
        else:
            sel.append(slice(s[0], s[1]))
    sel = tuple(sel)

    def run(args, report, record):
        return np.ascontiguousarray(args[0][sel])

    def run_out(args, out):
        np.copyto(out, args[0][sel])
        return out

    return _Op(run, (_call_free("slice", node.op),), run_out)


def _compile_concat(node: Node) -> _Op:
    axis = node.attrs.get("axis", 0)

    def run(args, report, record):
        return np.concatenate(args, axis=axis)

    def run_out(args, out):
        np.concatenate(args, axis=axis, out=out)
        return out

    return _Op(run, (_call_free("concat", node.op),), run_out)


def _compile_tridiagonal_matmul(node: Node) -> _Op:
    t, b = node.inputs

    def run(args, report, record):
        return special.tridiagonal_matmul(args[0], args[1])

    def run_out(args, out, scratch):
        return special.tridiagonal_matmul(
            args[0], args[1], out=out, scratch=scratch
        )

    return _Op(
        run,
        (_call("tridiagonal_matmul", (t.shape[0], b.shape[1]), node.op),),
        run_out,
        needs_scratch=True,
        out_order="C",
        arg_orders=("C", "C"),
    )


def _compile_loop(node: Node, fusion: bool) -> _Op:
    body: Graph = node.attrs["body"]
    trip: int = node.attrs["trip_count"]
    sub_plan = compile_plan(body, fusion=fusion)

    def run(args, report, record):
        carried = args[0]
        captured = args[1:]
        for i in range(trip):
            idx = np.array([[float(i)]], dtype=carried.dtype)
            outs, _ = sub_plan.execute(
                [idx, carried, *captured], report=report, record=record
            )
            carried = outs[0]
        return carried

    def run_loop(args, out, state, report, record):
        # Arena mode: iterations ping-pong between the LoopState's two
        # child arenas, so the carried value (living in the *other*
        # arena's buffers, or the outer arena's for iteration 0) and the
        # loop-invariant captures (outer-arena buffers, F-ordered) are
        # donated — aliased, never copied — into each iteration's feeds.
        # "fallback" keeps odd layouts (e.g. a promoted-dtype carried
        # value from the general path) correct by copying them.  After
        # both child arenas warm, a trip is allocation- and copy-free.
        carried = args[0]
        captured = args[1:]
        arenas = state.arenas
        for i in range(trip):
            # Re-resolved per iteration: per-call mode builds idx with the
            # *current* carried dtype, so a mid-loop promotion must be
            # mirrored here to keep body-side promotion bit-identical.
            idx = state.idx(carried.dtype)
            idx[0, 0] = i
            outs, _ = sub_plan.execute(
                [idx, carried, *captured], report=report, record=record,
                arena=arenas[i & 1], donate="fallback",
            )
            carried = outs[0]
            if carried is idx:
                # Degenerate body (returns the index input): detach before
                # the next iteration overwrites the shared idx buffer.
                np.copyto(out, idx)
                carried = out
        if carried.dtype != out.dtype:
            # The body promoted the carried dtype (e.g. a float64 const
            # against float32 feeds): hand the promoted value through
            # as-is instead of silently casting it into the buffer.
            return carried
        if carried is not out:
            np.copyto(out, carried)
        return out

    return _Op(run, (), fn_loop=run_loop, sub_plan=sub_plan)


def make_gemm_fns(
    trans_a: bool, trans_b: bool, alpha: float = 1.0
) -> tuple[ExecFn, OutFn]:
    """Executor pair for a dense GEMM with folded ``alpha``.

    Shared with the fusion pass, which rebuilds GEMM closures when it
    folds a trailing ``scale``/``neg`` into the product.  The
    destination-aware closure calls the dtype-dispatched f2py routine
    directly: shapes and flags were validated at compile time, the arena
    guarantees an F-contiguous destination, and the per-call wrapper
    checks are exactly the dispatch overhead a compiled plan exists to
    remove.  Same routine, same bits as :func:`repro.kernels.blas3.gemm`.
    """
    ta = 1 if trans_a else 0
    tb = 1 if trans_b else 0
    routines = blas3._GEMM

    def run(args, report, record):
        return blas3.gemm(
            args[0], args[1], alpha=alpha, trans_a=trans_a, trans_b=trans_b
        )

    def run_out(args, out):
        a, b = args
        routine = routines.get(a.dtype)
        if routine is None:
            # Non-BLAS dtype (e.g. integer feeds): take the validating
            # wrapper, which coerces or raises exactly like per-call
            # mode.  The result bypasses the (wrong-dtype) arena buffer —
            # the executor stores whatever fn_out returns.
            return run(args, None, False)
        # alpha passes as a python float: f2py casts it to the routine's
        # scalar type in C — same value, same bits as pre-building a
        # numpy scalar, without allocating one per call.
        return routine(
            alpha, a, b, beta=0.0, c=out, overwrite_c=1,
            trans_a=ta, trans_b=tb,
        )

    return run, run_out


def _gemv_fns(mat: int, vec: int, trans: bool) -> tuple[ExecFn, OutFn]:
    """Executor pair for a matrix-vector product (``args[mat] @ args[vec]``
    modulo ``trans``).  The destination-aware closure calls the
    dtype-dispatched f2py routine directly — shapes and flags were
    validated at compile time, exactly like the GEMM closures.
    """
    t = 1 if trans else 0
    routines = blas2._GEMV
    reshape = (-1, 1) if vec == 1 else (1, -1)

    def run(args, report, record):
        x = np.ascontiguousarray(args[vec]).ravel()
        return blas2.gemv(args[mat], x, trans=trans).reshape(reshape)

    def run_out(args, out):
        a = args[mat]
        routine = routines.get(a.dtype)
        x = np.ascontiguousarray(args[vec]).ravel()
        if routine is None:
            # Non-BLAS dtype: the validating wrapper raises the same
            # KernelError per-call mode would.
            blas2.gemv(a, x, trans=trans, out=out.reshape(-1))
            return out
        routine(1.0, a, x, beta=0.0, y=out.reshape(-1), overwrite_y=1, trans=t)
        return out

    return run, run_out


def make_gemm_beta_fns(
    trans_a: bool, trans_b: bool, alpha: float, beta: float, g_first: bool,
    ew_op: str,
) -> tuple[ExecFn, OutFn]:
    """Executor pair for a GEMM with a folded trailing ``add``/``sub``.

    Built by the fusion pass when a single-consumer elementwise combine
    of the product with a *dead* addend merges into the BLAS call's
    C-accumulate: ``C := alpha·op(A)op(B) + beta·C`` with the addend as
    ``C``.  ``alpha``/``beta`` are restricted to ±1 by the caller —
    sign flips are exact in IEEE arithmetic (and exact under FMA
    contraction too), so every variant is bit-identical to the separate
    GEMM-then-ufunc sequence:

    * ``add``:            ``alpha=1,  beta=1``   (either operand order)
    * ``sub``, ``G - C``: ``alpha=1,  beta=-1``
    * ``sub``, ``C - G``: ``alpha=-1, beta=1``

    ``args`` is ``[a, b, addend]``.  The per-call closure lets f2py copy
    the addend into the accumulate destination (``overwrite_c=0``):
    slot-level liveness is not object-level ownership — an upstream op
    can pass an *input array* through unchanged (e.g. a ``fori_loop``
    identity body), so writing into the addend object in place could
    corrupt a caller-owned feed.  The destination-aware closure stages
    the addend into the arena destination (arena-owned by construction)
    and accumulates there, allocation-free.  A non-BLAS dtype, a
    mixed-dtype operand pair, or a promoted addend falls back to the
    validating wrapper plus the original ufunc — raising or promoting
    exactly like the unfused plan.
    """
    ta = 1 if trans_a else 0
    tb = 1 if trans_b else 0
    routines = blas3._GEMM
    ufunc = np.add if ew_op == "add" else np.subtract

    def _fallback(args):
        a, b, c = args
        g = blas3.gemm(a, b, trans_a=trans_a, trans_b=trans_b)
        return ufunc(g, c) if g_first else ufunc(c, g)

    def run(args, report, record):
        a, b, c = args
        routine = routines.get(a.dtype)
        if routine is None or b.dtype != a.dtype or c.dtype != a.dtype:
            return _fallback(args)
        return routine(
            alpha, a, b, beta=beta, c=c,
            overwrite_c=0, trans_a=ta, trans_b=tb,
        )

    def run_out(args, out):
        a, b, c = args
        routine = routines.get(a.dtype)
        if routine is None or b.dtype != a.dtype or c.dtype != a.dtype:
            return _fallback(args)
        if c is not out:
            np.copyto(out, c)
        # alpha/beta (±1) pass as python floats: f2py's C-side cast is
        # exact, and no per-call numpy scalar is allocated.
        return routine(
            alpha, a, b, beta=beta, c=out,
            overwrite_c=1, trans_a=ta, trans_b=tb,
        )

    return run, run_out


def _compile_matmul(node: Node) -> _Op:
    a_node, b_node = node.inputs
    trans_a = bool(node.attrs.get("trans_a"))
    trans_b = bool(node.attrs.get("trans_b"))
    hint = node.attrs.get("kernel")
    if hint is not None:
        return _compile_structured_matmul(node, trans_a, trans_b, hint)

    a_eff = tuple(reversed(a_node.shape)) if trans_a else a_node.shape
    b_eff = tuple(reversed(b_node.shape)) if trans_b else b_node.shape
    m, k = a_eff
    _, n = b_eff

    if m == 1 and n == 1 and k > 1:
        run, run_out = _dot_fns(k)
        return _Op(run, (_call("dot", (k,), node.op),), run_out)
    if n == 1 and m > 1:
        run, run_out = _gemv_fns(0, 1, trans_a)
        return _Op(
            run, (_call("gemv", (a_node.shape[0], a_node.shape[1]), node.op),),
            run_out,
        )
    if m == 1 and n > 1:
        run, run_out = _gemv_fns(1, 0, not trans_b)
        return _Op(
            run, (_call("gemv", (b_node.shape[0], b_node.shape[1]), node.op),),
            run_out,
        )

    run, run_out = make_gemm_fns(trans_a, trans_b)
    return _Op(
        run,
        (_call("gemm", (m, k, n), node.op),),
        run_out,
        kind="gemm",
        params=(trans_a, trans_b, 1.0),
    )


def _compile_structured_matmul(
    node: Node, trans_a: bool, trans_b: bool, hint: str
) -> _Op:
    """Compile a matmul carrying a property-dispatch kernel hint."""
    a_node, b_node = node.inputs
    opts = dict(node.attrs.get("kernel_opts", ()))
    a_eff_shape = tuple(reversed(a_node.shape)) if trans_a else a_node.shape
    b_eff_shape = tuple(reversed(b_node.shape)) if trans_b else b_node.shape
    m, k = a_eff_shape
    n = b_eff_shape[1]

    def eff(args):
        a, b = args
        a_eff = np.ascontiguousarray(a.T) if trans_a else a
        b_eff = np.ascontiguousarray(b.T) if trans_b else b
        return a_eff, b_eff

    if hint == "zero":
        def run(args, report, record):
            return np.zeros((m, n), dtype=args[0].dtype)

        def run_out(args, out):
            out.fill(0.0)
            return out

        return _Op(run, (_call_free("zero", node.op),), run_out)
    if hint == "identity":
        def run(args, report, record):
            return eff(args)[1].copy()

        def run_out(args, out):
            np.copyto(out, args[1].T if trans_b else args[1])
            return out

        return _Op(run, (_call_free("identity", node.op),), run_out)
    if hint == "identity_right":
        def run(args, report, record):
            return eff(args)[0].copy()

        def run_out(args, out):
            np.copyto(out, args[0].T if trans_a else args[0])
            return out

        return _Op(run, (_call_free("identity", node.op),), run_out)
    # Destination-aware variants exist for the untransposed operand
    # forms; a transposed operand would have to be materialized first
    # (``eff`` allocates), so those stay on the compute-then-copy path.
    plain = not trans_a and not trans_b
    if hint == "diag_matmul":
        def run(args, report, record):
            return special.diag_matmul(*eff(args))

        def run_out(args, out):
            return special.diag_matmul(args[0], args[1], out=out)

        return _Op(
            run, (_call("diag_matmul", (k, n), node.op),),
            run_out if plain else None,
        )
    if hint == "tridiagonal_matmul":
        def run(args, report, record):
            return special.tridiagonal_matmul(*eff(args))

        def run_out(args, out, scratch):
            return special.tridiagonal_matmul(
                args[0], args[1], out=out, scratch=scratch
            )

        return _Op(
            run, (_call("tridiagonal_matmul", (k, n), node.op),),
            run_out if plain else None,
            needs_scratch=plain,
            out_order="C" if plain else "F",
            arg_orders=("C", "C") if plain else None,
        )
    if hint == "trmm":
        lower = opts.get("lower", True)

        def run(args, report, record):
            a_eff, b_eff = eff(args)
            return blas3.trmm(a_eff, b_eff, lower=lower)

        def run_out(args, out):
            return blas3.trmm(args[0], args[1], lower=lower, out=out)

        return _Op(
            run, (_call("trmm", (m, n), node.op),),
            run_out if plain else None,
        )
    if hint == "trmm_right":
        lower = opts.get("lower", True)

        def run(args, report, record):
            a_eff, b_eff = eff(args)
            return blas3.trmm(b_eff, a_eff, side_left=False, lower=lower)

        def run_out(args, out):
            return blas3.trmm(
                args[1], args[0], side_left=False, lower=lower, out=out
            )

        return _Op(
            run, (_call("trmm", (n, m), node.op),),
            run_out if plain else None,
        )
    if hint == "symm":
        def run(args, report, record):
            return blas3.symm(*eff(args))

        def run_out(args, out):
            return blas3.symm(args[0], args[1], out=out)

        return _Op(
            run, (_call("symm", (m, n), node.op),),
            run_out if plain else None,
        )
    if hint == "syrk":
        if trans_b == trans_a:
            raise KernelError("syrk hint requires exactly one transpose flag")
        trans = trans_a

        def run(args, report, record):
            return blas3.syrk(args[0], trans=trans)

        def run_out(args, out):
            return blas3.syrk(args[0], trans=trans, out=out)

        return _Op(run, (_call("syrk", (m, k), node.op),), run_out)
    raise KernelError(f"unknown matmul kernel hint {hint!r}")


_COMPILERS: dict[str, Callable[[Node], _Op]] = {
    "const": _compile_const,
    "transpose": _compile_transpose,
    "add": _compile_add,
    "sub": _compile_sub,
    "neg": _compile_neg,
    "scale": _compile_scale,
    "dot": _compile_dot,
    "slice": _compile_slice,
    "concat": _compile_concat,
    "tridiagonal_matmul": _compile_tridiagonal_matmul,
    "matmul": _compile_matmul,
}


# -- the compiler proper ------------------------------------------------------


def compile_plan(
    graph: Graph, *, fold_constants: bool = False, fusion: bool = False
) -> Plan:
    """Compile ``graph`` into an executable :class:`Plan`.

    ``fusion=True`` runs the post-schedule fusion stage (see
    :mod:`repro.runtime.fusion`): elementwise chains collapse into single
    fused instructions and trailing scales fold into GEMM's alpha.
    """
    start = time.perf_counter()
    signature = graph_signature(graph)
    if fold_constants:
        from ..passes.constant_folding import ConstantFolding

        graph = ConstantFolding().run(graph)

    order = graph.topological()
    last_use: dict[int, int] = {}
    for idx, node in enumerate(order):
        for inp in node.inputs:
            last_use[id(inp)] = idx
    for out in graph.outputs:
        last_use[id(out)] = len(order)  # outputs stay live

    # Slot assignment: inputs first (positional feed order), then one slot
    # per executed node.  Recycling is shape-aware — a dead temporary's
    # slot is only reused for a value of the same shape, so every slot has
    # exactly one static shape and an arena can back it with one buffer.
    slot_of: dict[int, int] = {}
    inputs: list[PlanInput] = []
    for i, node in enumerate(graph.inputs):
        slot_of[id(node)] = i
        inputs.append(PlanInput(node.name, node.shape, i))
    num_slots = len(inputs)
    free_pool: dict[tuple, list[int]] = {}
    # Workspace slots for destination-aware kernels that need one
    # (tridiagonal row scalings).  Shared per (shape, order): a scratch
    # is only live *within* one instruction, so every same-shaped site
    # can reuse one buffer.  Never fed from (or released into) the value
    # pool — a pooled slot could alias a live operand.
    scratch_pool: dict[tuple, int] = {}
    # Per-slot layout votes (see _Op.out_order/arg_orders).  A slot's
    # arena buffer is C-ordered only when the preference is unanimous:
    # every writer votes "C" (value slots), or every consumer votes "C"
    # (input slots, which have no writer) — any "F" vote wins, because a
    # mixed-layout operand pair costs more (ufunc buffering, hidden f2py
    # copies) than a C-preferring kernel reading an F buffer.
    writer_votes: dict[int, set] = {}
    consumer_votes: dict[int, set] = {}
    scratch_orders: dict[int, str] = {}

    instructions: list[Instruction] = []
    for idx, node in enumerate(order):
        if node.op == "input":
            if id(node) not in slot_of:
                raise GraphError(f"reachable input {node.name!r} not declared")
            continue
        if node.op == "loop":
            op = _compile_loop(node, fusion)
        else:
            compiler = _COMPILERS.get(node.op)
            if compiler is None:
                raise GraphError(f"runtime has no compiler for op {node.op!r}")
            op = compiler(node)
        pool = free_pool.get(node.shape)
        if pool:
            out_slot = pool.pop()
        else:
            out_slot = num_slots
            num_slots += 1
        slot_of[id(node)] = out_slot
        frees: list[int] = []
        seen: set[int] = set()
        for inp in node.inputs:
            if id(inp) in seen:
                continue
            seen.add(id(inp))
            if last_use.get(id(inp)) == idx and inp.op not in ("input", "const"):
                frees.append(slot_of[id(inp)])
                free_pool.setdefault(inp.shape, []).append(slot_of[id(inp)])
        scratch = None
        if op.needs_scratch:
            scratch_key = (node.shape, op.out_order)
            scratch = scratch_pool.get(scratch_key)
            if scratch is None:
                scratch = scratch_pool[scratch_key] = num_slots
                scratch_orders[scratch] = op.out_order
                num_slots += 1
        writer_votes.setdefault(out_slot, set()).add(op.out_order)
        arg_orders = op.arg_orders or (("F",) * len(node.inputs))
        for inp, pref in zip(node.inputs, arg_orders):
            if pref is not None:
                consumer_votes.setdefault(slot_of[id(inp)], set()).add(pref)
        instructions.append(
            Instruction(
                out_slot=out_slot,
                arg_slots=tuple(slot_of[id(i)] for i in node.inputs),
                fn=op.fn,
                calls=op.calls,
                free_slots=tuple(frees),
                op=node.op,
                label=node.name,
                out_shape=node.shape,
                fn_out=op.fn_out,
                kind=op.kind,
                params=op.params,
                scratch=scratch,
                fn_loop=op.fn_loop,
                sub_plan=op.sub_plan,
            )
        )

    fusion_stats = None
    if fusion:
        from .fusion import fuse_instructions

        instructions, fusion_stats = fuse_instructions(tuple(instructions), inputs)
        instructions = list(instructions)

    slot_orders = ["F"] * num_slots
    for slot, votes in writer_votes.items():
        if votes == {"C"}:
            slot_orders[slot] = "C"
    for slot in range(len(inputs)):  # input slots: consumer-decided
        if consumer_votes.get(slot) == {"C"}:
            slot_orders[slot] = "C"
    for slot, order in scratch_orders.items():
        slot_orders[slot] = order

    return Plan(
        instructions=tuple(instructions),
        inputs=tuple(inputs),
        output_slots=tuple(slot_of[id(o)] for o in graph.outputs),
        num_slots=num_slots,
        signature=signature,
        compile_seconds=time.perf_counter() - start,
        fusion_stats=fusion_stats,
        slot_orders=tuple(slot_orders),
        source=(graph, fold_constants, fusion),
    )
