"""Tests for the BLAS kernel wrappers (levels 1-3) against numpy oracles."""

import numpy as np
import pytest

from repro.errors import DTypeError, KernelError, ShapeError
from repro.kernels import blas1, blas2, blas3


def _mat(rng, m, n, dtype=np.float32):
    return (rng.random((m, n)) - 0.5).astype(dtype)


def _vec(rng, n, dtype=np.float32):
    return (rng.random(n) - 0.5).astype(dtype)


class TestBlas1:
    def test_scal(self, rng):
        x = _vec(rng, 50)
        assert np.allclose(blas1.scal(2.5, x), 2.5 * x, atol=1e-6)

    def test_scal_does_not_mutate_by_default(self, rng):
        x = _vec(rng, 10)
        orig = x.copy()
        blas1.scal(3.0, x)
        assert np.array_equal(x, orig)

    def test_scal_overwrite_mutates(self, rng):
        x = _vec(rng, 10)
        expected = 3.0 * x
        out = blas1.scal(3.0, x, overwrite=True)
        assert np.allclose(out, expected, atol=1e-6)

    def test_axpy(self, rng):
        x, y = _vec(rng, 40), _vec(rng, 40)
        assert np.allclose(blas1.axpy(1.5, x, y), 1.5 * x + y, atol=1e-6)

    def test_axpy_preserves_y(self, rng):
        x, y = _vec(rng, 12), _vec(rng, 12)
        y0 = y.copy()
        blas1.axpy(2.0, x, y)
        assert np.array_equal(y, y0)

    def test_dot(self, rng):
        x, y = _vec(rng, 100), _vec(rng, 100)
        assert blas1.dot(x, y) == pytest.approx(float(x @ y), rel=1e-5)

    def test_nrm2(self, rng):
        x = _vec(rng, 64)
        assert blas1.nrm2(x) == pytest.approx(float(np.linalg.norm(x)), rel=1e-5)

    def test_asum(self, rng):
        x = _vec(rng, 64)
        assert blas1.asum(x) == pytest.approx(float(np.abs(x).sum()), rel=1e-5)

    def test_copy(self, rng):
        x = _vec(rng, 30)
        out = blas1.copy(x)
        assert np.array_equal(out, x)
        assert out is not x

    def test_float64_dispatch(self, rng):
        x = _vec(rng, 20, np.float64)
        y = _vec(rng, 20, np.float64)
        out = blas1.axpy(1.0, x, y)
        assert out.dtype == np.float64
        assert np.allclose(out, x + y)

    def test_length_mismatch(self, rng):
        with pytest.raises(ShapeError):
            blas1.dot(_vec(rng, 5), _vec(rng, 6))

    def test_mixed_dtypes_rejected(self, rng):
        with pytest.raises(DTypeError):
            blas1.axpy(1.0, _vec(rng, 5), _vec(rng, 5, np.float64))

    def test_matrix_rejected_for_vector_op(self, rng):
        with pytest.raises(ShapeError):
            blas1.nrm2(_mat(rng, 3, 3))

    def test_int_input_promoted_to_float32(self):
        out = blas1.scal(2.0, np.array([1, 2, 3]))
        assert out.dtype == np.float32
        assert np.allclose(out, [2, 4, 6])


class TestBlas2:
    def test_gemv(self, rng):
        a, x = _mat(rng, 20, 30), _vec(rng, 30)
        assert np.allclose(blas2.gemv(a, x), a @ x, atol=1e-5)

    def test_gemv_trans(self, rng):
        a, x = _mat(rng, 20, 30), _vec(rng, 20)
        assert np.allclose(blas2.gemv(a, x, trans=True), a.T @ x, atol=1e-5)

    def test_gemv_alpha(self, rng):
        a, x = _mat(rng, 10, 10), _vec(rng, 10)
        assert np.allclose(blas2.gemv(a, x, alpha=2.0), 2.0 * (a @ x), atol=1e-5)

    def test_gemv_shape_error(self, rng):
        with pytest.raises(ShapeError):
            blas2.gemv(_mat(rng, 4, 5), _vec(rng, 4))

    def test_gemv_trans_shape_error(self, rng):
        with pytest.raises(ShapeError):
            blas2.gemv(_mat(rng, 4, 5), _vec(rng, 5), trans=True)

    def test_ger(self, rng):
        x, y = _vec(rng, 15), _vec(rng, 25)
        assert np.allclose(blas2.ger(x, y), np.outer(x, y), atol=1e-5)

    def test_symv_reads_one_triangle(self, rng):
        s = _mat(rng, 16, 16)
        s = (s + s.T) / 2
        x = _vec(rng, 16)
        # corrupt the strict upper triangle; lower=True must ignore it
        corrupted = s.copy()
        corrupted[np.triu_indices(16, 1)] = 99.0
        assert np.allclose(blas2.symv(corrupted, x, lower=True), s @ x, atol=1e-4)

    def test_trmv_lower(self, rng):
        l = np.tril(_mat(rng, 12, 12))
        x = _vec(rng, 12)
        assert np.allclose(blas2.trmv(l, x, lower=True), l @ x, atol=1e-5)

    def test_trmv_upper(self, rng):
        u = np.triu(_mat(rng, 12, 12))
        x = _vec(rng, 12)
        assert np.allclose(blas2.trmv(u, x, lower=False), u @ x, atol=1e-5)

    def test_trsv_solves(self, rng):
        l = np.tril(_mat(rng, 10, 10)) + 2 * np.eye(10, dtype=np.float32)
        b = _vec(rng, 10)
        x = blas2.trsv(l, b, lower=True)
        assert np.allclose(l @ x, b, atol=1e-4)

    def test_trsv_trans_solves(self, rng):
        l = np.tril(_mat(rng, 10, 10)) + 2 * np.eye(10, dtype=np.float32)
        b = _vec(rng, 10)
        x = blas2.trsv(l, b, lower=True, trans=True)
        assert np.allclose(l.T @ x, b, atol=1e-4)

    def test_nonsquare_rejected_for_trmv(self, rng):
        with pytest.raises(ShapeError):
            blas2.trmv(_mat(rng, 4, 5), _vec(rng, 5))


class TestBlas3:
    def test_gemm(self, rng):
        a, b = _mat(rng, 10, 20), _mat(rng, 20, 15)
        assert np.allclose(blas3.gemm(a, b), a @ b, atol=1e-5)

    @pytest.mark.parametrize("ta,tb", [(False, False), (True, False),
                                       (False, True), (True, True)])
    def test_gemm_transpose_flags(self, rng, ta, tb):
        a = _mat(rng, 8, 12) if not ta else _mat(rng, 12, 8)
        b = _mat(rng, 12, 9) if not tb else _mat(rng, 9, 12)
        ref = (a.T if ta else a) @ (b.T if tb else b)
        assert np.allclose(blas3.gemm(a, b, trans_a=ta, trans_b=tb), ref, atol=1e-5)

    def test_gemm_alpha(self, rng):
        a, b = _mat(rng, 6, 6), _mat(rng, 6, 6)
        assert np.allclose(blas3.gemm(a, b, alpha=-0.5), -0.5 * (a @ b), atol=1e-5)

    def test_gemm_inner_mismatch(self, rng):
        with pytest.raises(ShapeError):
            blas3.gemm(_mat(rng, 4, 5), _mat(rng, 6, 4))

    def test_trmm_lower(self, rng):
        l = np.tril(_mat(rng, 14, 14))
        b = _mat(rng, 14, 9)
        assert np.allclose(blas3.trmm(l, b, lower=True), l @ b, atol=1e-5)

    def test_trmm_upper(self, rng):
        u = np.triu(_mat(rng, 14, 14))
        b = _mat(rng, 14, 9)
        assert np.allclose(blas3.trmm(u, b, lower=False), u @ b, atol=1e-5)

    def test_trmm_right_side(self, rng):
        l = np.tril(_mat(rng, 9, 9))
        b = _mat(rng, 14, 9)
        assert np.allclose(
            blas3.trmm(l, b, side_left=False, lower=True), b @ l, atol=1e-5
        )

    def test_trmm_ignores_other_triangle(self, rng):
        """TRMM must never read the zero triangle — the very reason it is
        half the FLOPs of GEMM."""
        dense = _mat(rng, 10, 10)
        b = _mat(rng, 10, 10)
        assert np.allclose(
            blas3.trmm(dense, b, lower=True), np.tril(dense) @ b, atol=1e-5
        )

    def test_trmm_shape_error(self, rng):
        with pytest.raises(ShapeError):
            blas3.trmm(np.tril(_mat(rng, 5, 5)), _mat(rng, 6, 4))

    def test_syrk_a_at(self, rng):
        a = _mat(rng, 12, 7)
        assert np.allclose(blas3.syrk(a), a @ a.T, atol=1e-5)

    def test_syrk_at_a(self, rng):
        a = _mat(rng, 12, 7)
        assert np.allclose(blas3.syrk(a, trans=True), a.T @ a, atol=1e-5)

    def test_syrk_unfilled_is_triangular(self, rng):
        a = _mat(rng, 8, 8)
        c = blas3.syrk(a, fill=False, lower=True)
        assert np.allclose(c, np.tril(c))

    def test_syrk_result_symmetric(self, rng):
        c = blas3.syrk(_mat(rng, 9, 5))
        assert np.allclose(c, c.T, atol=1e-6)

    def test_symm(self, rng):
        s = _mat(rng, 11, 11)
        s = (s + s.T) / 2
        b = _mat(rng, 11, 6)
        assert np.allclose(blas3.symm(s, b), s @ b, atol=1e-5)

    def test_trsm_solves(self, rng):
        l = np.tril(_mat(rng, 10, 10)) + 2 * np.eye(10, dtype=np.float32)
        b = _mat(rng, 10, 4)
        x = blas3.trsm(l, b, lower=True)
        assert np.allclose(l @ x, b, atol=1e-4)

    def test_float64_gemm(self, rng):
        a, b = _mat(rng, 8, 8, np.float64), _mat(rng, 8, 8, np.float64)
        out = blas3.gemm(a, b)
        assert out.dtype == np.float64
        assert np.allclose(out, a @ b)

    def test_mixed_dtype_rejected(self, rng):
        with pytest.raises(DTypeError):
            blas3.gemm(_mat(rng, 4, 4), _mat(rng, 4, 4, np.float64))
