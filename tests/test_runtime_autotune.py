"""Online plan autotuning: races, the bit-identity gate, promotions.

Contracts under test (the PR-10 perf tentpole):

* **Determinism** — a fixed config seed plus a fixed
  ``REPRO_AUTOTUNE_BUDGET`` produces the *same* winner (name and
  derivation record) across two fresh sessions with fresh stores: the
  race is reproducible, not a coin flip.
* **Bit-identity gate** — a candidate whose outputs diverge from the
  canonical plan's on the real feeds is disqualified *before any timed
  round* and can never be promoted.  Float-random feeds make chain
  reassociation diverge, so an end-to-end session on such feeds must
  reject every derivation and keep the canonical plan.
* **Promotion** — on integer-valued feeds (bit-exact reassociation) the
  ``(A @ B) @ x`` chain promotes the right-association derivation, the
  promoted plan keeps answering bit-identically, and the winner + its
  derivation record persist through the plan store: a restarted session
  serves the tuned plan with ``promotions_restored >= 1`` and
  ``tuning_seconds == 0`` — zero re-tuning.
* **Safety** — config validation fails loudly at ``Options`` time; the
  hot-threshold gate keeps cold signatures untouched; worker mode races
  off the hot path and lands the same promotion.
"""

from __future__ import annotations

import glob
import json
import os

import numpy as np
import pytest

from repro import api
from repro.errors import ConfigError
from repro.ir import trace
from repro.passes import default_pipeline
from repro.runtime import PlanCache, compile_plan
from repro.runtime.autotune import (
    AutotuneConfig,
    Candidate,
    generate_candidates,
    race,
)
from repro.tensor import random_general, random_vector
from repro.tensor.tensor import Tensor


def _int_chain(n: int = 96, seed: int = 7):
    """(A @ B) @ x on integer-valued float32 feeds: every reassociation
    is bit-exact, and the right-association derivation is structurally
    ~n/2 times cheaper — a deterministic, promotable win."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.integers(0, 4, (n, n)).astype(np.float32))
    b = Tensor(rng.integers(0, 4, (n, n)).astype(np.float32))
    x = Tensor(rng.integers(0, 4, (n, 1)).astype(np.float32))
    return (a, b, x), (a.data @ b.data) @ x.data


def _chain_fn(p, q, v):
    return (p @ q) @ v


class TestConfig:
    def test_normalize_off_and_defaults(self):
        assert AutotuneConfig.normalize(None) is None
        assert AutotuneConfig.normalize(False) is None
        assert AutotuneConfig.normalize(True) == AutotuneConfig()
        cfg = AutotuneConfig(hot_threshold=3)
        assert AutotuneConfig.normalize(cfg) is cfg

    def test_normalize_dict_overrides(self):
        cfg = AutotuneConfig.normalize({"hot_threshold": 5, "reps": 3})
        assert cfg.hot_threshold == 5 and cfg.reps == 3

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown autotune fields"):
            AutotuneConfig.normalize({"hot_treshold": 5})

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigError, match="autotune must be"):
            AutotuneConfig.normalize("fast")

    @pytest.mark.parametrize("overrides", [
        {"hot_threshold": 0},
        {"max_candidates": 1},
        {"max_candidates": 5},
        {"budget_seconds": 0.0},
        {"warmup": -1},
        {"reps": 0},
        {"min_speedup": 1.0},
        {"mode": "async"},
        {"derive_limit": -1},
    ])
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ConfigError):
            AutotuneConfig.normalize(overrides)

    def test_options_validate_catches_bad_autotune(self):
        with pytest.raises(ConfigError):
            api.Options(autotune={"mode": "async"}).validate()

    def test_budget_env_override(self, monkeypatch):
        cfg = AutotuneConfig(budget_seconds=1.0)
        monkeypatch.setenv("REPRO_AUTOTUNE_BUDGET", "0.01")
        assert cfg.effective_budget() == 0.01
        monkeypatch.setenv("REPRO_AUTOTUNE_BUDGET", "-5")
        assert cfg.effective_budget() == 1.0  # non-positive: ignored
        monkeypatch.setenv("REPRO_AUTOTUNE_BUDGET", "cheap")
        with pytest.raises(ConfigError, match="REPRO_AUTOTUNE_BUDGET"):
            cfg.effective_budget()


class TestCandidates:
    @pytest.fixture
    def optimized(self):
        args = [random_general(16, seed=1), random_general(16, seed=2),
                random_vector(16, seed=3)]
        return default_pipeline().run(trace(_chain_fn, args))

    def test_canonical_first_then_derivations_then_knob(self, optimized):
        cands = generate_candidates(
            optimized, fold_constants=False, fusion=False,
            config=AutotuneConfig(),
        )
        assert cands[0].name == "canonical"
        assert any(c.name.startswith("derivation-") for c in cands[1:])
        assert cands[-1].name == "fusion-on"
        assert len(cands) <= 4

    def test_knob_variants_off(self, optimized):
        cands = generate_candidates(
            optimized, fold_constants=False, fusion=False,
            config=AutotuneConfig(knob_variants=False),
        )
        assert all(not c.name.startswith("fusion-") for c in cands)

    def test_derive_off_leaves_knob_flip_only(self, optimized):
        cands = generate_candidates(
            optimized, fold_constants=False, fusion=True,
            config=AutotuneConfig(derive=False),
        )
        assert [c.name for c in cands] == ["canonical", "fusion-off"]

    def test_oversize_graph_skips_derivation_search(self, optimized):
        cands = generate_candidates(
            optimized, fold_constants=False, fusion=False,
            config=AutotuneConfig(derive_max_graph_nodes=1),
        )
        assert all(not c.name.startswith("derivation-") for c in cands)

    def test_max_candidates_clamps(self, optimized):
        cands = generate_candidates(
            optimized, fold_constants=False, fusion=False,
            config=AutotuneConfig(max_candidates=2),
        )
        assert len(cands) == 2 and cands[0].name == "canonical"


class TestBitIdentityGate:
    def test_divergent_candidate_never_timed_never_wins(self):
        """A rival computing a *different* function is disqualified at
        the verification run — ``best_seconds`` stays ``None``, so it is
        provably excluded before a single timed round."""
        args = [random_general(16, seed=1), random_general(16, seed=2)]
        feeds = [t.data for t in args]
        canonical = default_pipeline().run(trace(lambda p, q: p @ q, args))
        evil = default_pipeline().run(trace(lambda p, q: q @ p, args))
        cands = [
            Candidate(name="canonical", graph=canonical,
                      fold_constants=False, fusion=False),
            Candidate(name="evil", graph=evil,
                      fold_constants=False, fusion=False),
        ]
        outcome = race(cands, feeds,
                       config=AutotuneConfig(budget_seconds=0.02, reps=2))
        assert cands[1].bit_identical is False
        assert cands[1].best_seconds is None
        assert outcome.rejected == 1
        assert outcome.winner is cands[0]
        assert not outcome.promote

    def test_float_feeds_reject_reassociation_end_to_end(self):
        """Random float feeds make chain reassociation bit-diverge; the
        session must race, reject every derivation, promote nothing, and
        keep answering with the canonical plan."""
        args = [random_general(64, seed=4), random_general(64, seed=5),
                random_vector(64, seed=6)]
        want = (args[0].data @ args[1].data) @ args[2].data
        with api.Session(autotune={
            "hot_threshold": 2, "budget_seconds": 0.02,
            "knob_variants": False, "min_speedup": 0.0,
        }) as session:
            chain = session.compile(_chain_fn)
            for _ in range(4):
                out = chain(*args)
            at = session.stats().autotune
        assert at.signatures_tuned == 1
        assert at.candidates_rejected >= 1
        assert at.promotions == 0
        assert at.tuning_errors == 0
        assert np.allclose(out.data, want, rtol=1e-5, atol=1e-5)


class TestPromotion:
    def test_inline_promotion_and_bit_identical_serving(self):
        (a, b, x), want = _int_chain()
        with api.Session(autotune={
            "hot_threshold": 3, "budget_seconds": 0.05,
        }) as session:
            chain = session.compile(_chain_fn)
            for _ in range(5):
                chain(a, b, x)
            at = session.stats().autotune
            out = chain(a, b, x)  # served by the promoted plan
        assert at.signatures_tuned == 1
        assert at.promotions == 1
        assert at.speedup_pct > 0.0
        assert np.array_equal(out.data, want)

    def test_below_threshold_never_tunes(self):
        (a, b, x), _ = _int_chain(n=16)
        with api.Session(autotune={"hot_threshold": 50}) as session:
            chain = session.compile(_chain_fn)
            for _ in range(5):
                chain(a, b, x)
            at = session.stats().autotune
        assert at.signatures_tuned == 0
        assert at.candidates_raced == 0

    def test_worker_mode_promotes_off_the_hot_path(self):
        import time

        (a, b, x), want = _int_chain()
        with api.Session(autotune={
            "hot_threshold": 2, "budget_seconds": 0.05, "mode": "worker",
        }) as session:
            chain = session.compile(_chain_fn)
            for _ in range(4):
                chain(a, b, x)
            deadline = time.time() + 60.0
            while time.time() < deadline:
                if session.stats().autotune.signatures_tuned >= 1:
                    break
                time.sleep(0.05)
            at = session.stats().autotune
            out = chain(a, b, x)
        assert at.signatures_tuned == 1
        assert at.promotions == 1
        assert np.array_equal(out.data, want)

    def test_stats_render_has_autotune_line(self):
        (a, b, x), _ = _int_chain(n=32)
        with api.Session(autotune={
            "hot_threshold": 3, "budget_seconds": 0.02,
        }) as session:
            chain = session.compile(_chain_fn)
            for _ in range(5):
                chain(a, b, x)
            rendered = session.stats().render()
        assert "autotune:" in rendered
        assert "signature(s) tuned" in rendered


def _tune_once(store_dir: str, *, calls: int = 5) -> "dict | None":
    """One fresh session tuning the integer chain against ``store_dir``;
    returns the alias record the promotion persisted."""
    (a, b, x), want = _int_chain()
    with api.Session(
        plan_store=store_dir,
        autotune={"hot_threshold": 3, "seed": 7},
    ) as session:
        chain = session.compile(_chain_fn)
        for _ in range(calls):
            out = chain(a, b, x)
        assert np.array_equal(out.data, want)
        assert session.stats().autotune.promotions == 1
    aliases = glob.glob(os.path.join(store_dir, "aliases", "*"))
    assert len(aliases) == 1
    with open(aliases[0]) as fh:
        return json.load(fh).get("record")


class TestDeterminismAndPersistence:
    def test_fixed_seed_and_budget_pick_identical_winner(
        self, tmp_path, monkeypatch
    ):
        """The ISSUE's determinism clause: same seed, same
        ``REPRO_AUTOTUNE_BUDGET`` => the same winner (name *and*
        derivation text) lands in two independent stores."""
        monkeypatch.setenv("REPRO_AUTOTUNE_BUDGET", "0.05")
        rec1 = _tune_once(str(tmp_path / "s1"))
        rec2 = _tune_once(str(tmp_path / "s2"))
        assert rec1 is not None and rec2 is not None
        assert rec1["winner"] == rec2["winner"]
        assert rec1["derivation"] == rec2["derivation"]
        assert rec1["fusion"] == rec2["fusion"]

    def test_promotion_record_carries_measured_costs(self, tmp_path):
        rec = _tune_once(str(tmp_path))
        assert rec["winner"].startswith(("derivation-", "fusion-"))
        assert rec["winner_seconds"] < rec["canonical_seconds"]
        assert rec["speedup_pct"] > 0.0
        assert rec["candidates_raced"] >= 2

    def test_restart_restores_winner_with_zero_retuning(self, tmp_path):
        _tune_once(str(tmp_path))
        (a, b, x), want = _int_chain()
        with api.Session(
            plan_store=str(tmp_path),
            autotune={"hot_threshold": 3, "seed": 7},
        ) as session:
            chain = session.compile(_chain_fn)
            # Drive well past the threshold: a restored winner must
            # never re-tune, however hot the signature gets.
            for _ in range(8):
                out = chain(a, b, x)
            stats = session.stats()
        assert np.array_equal(out.data, want)
        assert stats.autotune.promotions_restored == 1
        assert stats.autotune.signatures_tuned == 0
        assert stats.autotune.tuning_seconds == 0.0
        assert stats.misses == 0  # warm start: zero cold compiles
        assert "restored from store" in stats.render()


class TestPlanCacheHooks:
    def test_note_execution_accumulates_hotness(self):
        cache = PlanCache()
        key = (("sig",), False, False)
        assert cache.note_execution(key) == 1
        assert cache.note_execution(key, count=4) == 5

    def test_promote_swaps_entry_and_counts(self):
        args = [random_general(8, seed=1), random_general(8, seed=2)]
        graph = default_pipeline().run(trace(lambda p, q: p @ q, args))
        cache = PlanCache()
        plan, compiled_here = cache.get_with_info(graph)
        assert compiled_here
        from repro.runtime.signature import graph_signature

        key = (graph_signature(graph), False, False)
        winner = compile_plan(graph, fusion=True)
        cache.promote(key, winner)
        assert cache.stats.promotions == 1
        assert cache.get(graph) is winner
