"""Compare a freshly recorded ``BENCH_runtime.json`` against the committed one.

The CI bench-smoke job runs the benchmark suite, then calls this script
with the repository's committed JSON as the baseline: a regression beyond
the tolerance in either the fused+arena execution time or its allocation
peak fails the job.  Timings are only comparable on the same workload, so
the check is skipped (with a notice, exit 0) when the workload shape
differs — e.g. when ``REPRO_BENCH_LOOPS`` shrank the graph.

The committed baseline is recorded on a developer machine while CI runs
on whatever runner it gets, so absolute seconds are not directly
comparable.  Both JSONs carry ``machine_ref_sgemm_out_seconds`` — a raw
BLAS-call probe at the bench operand size — and timing limits are scaled
by the fresh/baseline ratio of that probe (clamped to [0.2, 5]×): a
runner half as fast gets a limit twice as high.  Byte-count metrics are
machine-independent and compared unscaled.

Usage::

    python benchmarks/check_bench_regression.py baseline.json fresh.json \
        [--tolerance 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys

#: Metrics gated against the committed baseline (higher = worse).
GATED_KEYS = (
    "plan_exec_fused_arena_seconds",
    "alloc_peak_bytes_fused_arena",
    "pinned_exec_seconds",
    "batch_64_feeds_sharded_seconds",
    "sharded_supervised_seconds",
    "serve_p50_latency_seconds",
    "plan_store_warm_start_seconds",
    "autotuned_exec_seconds",
)

#: Keys a runner may legitimately not produce (sharding disabled via
#: ``REPRO_BENCH_SHARDS=0``, serve bench not run, or recorded as
#: ``null``): absence from the *fresh* results skips the key with a
#: notice instead of failing — mirroring the workload-mismatch skip.
#: Absence from an older *baseline* is already tolerated for every key.
OPTIONAL_KEYS = (
    "batch_64_feeds_sharded_seconds",
    "sharded_supervised_seconds",
    "serve_p50_latency_seconds",
)

#: Keys only comparable when both runs used the same shard count.
SHARD_KEYS = (
    "batch_64_feeds_sharded_seconds",
    "sharded_supervised_seconds",
)

#: ``serve_*`` keys are only comparable when both serve benches drove
#: the same load shape (shards, concurrency, coalescer ceiling) — p50
#: under a different wave size is a different experiment, not a
#: regression.
SERVE_KEYS = (
    "serve_p50_latency_seconds",
)
SERVE_SHAPE = ("serve_shards", "serve_concurrency", "serve_max_wave")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_runtime.json")
    parser.add_argument("fresh", help="freshly recorded BENCH_runtime.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative regression (default 0.20)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)

    base_wl = baseline.get("workload", {})
    fresh_wl = fresh.get("workload", {})
    if base_wl.get("nodes") != fresh_wl.get("nodes") or \
            base_wl.get("operand_n") != fresh_wl.get("operand_n"):
        print(
            f"bench-regression: workload differs (baseline {base_wl}, "
            f"fresh {fresh_wl}) — timings not comparable, skipping check"
        )
        return 0
    # Shard timings are only comparable at the same worker count (a
    # 1-shard run is legitimately ~2x a 2-shard baseline) — mirror the
    # workload-mismatch skip for the shard-dependent keys.
    shard_comparable = (
        baseline.get("shard_workers") == fresh.get("shard_workers")
    )
    if not shard_comparable:
        print(
            f"bench-regression: shard_workers differ (baseline "
            f"{baseline.get('shard_workers')}, fresh "
            f"{fresh.get('shard_workers')}) — skipping shard metrics"
        )
    # Serve latencies are load-shape dependent the same way.  An older
    # baseline with no serve keys at all compares as shape (None,...) ==
    # (None,...) here and is then skipped per-key by the absent-from-
    # baseline rule below.
    serve_comparable = all(
        baseline.get(k) == fresh.get(k) for k in SERVE_SHAPE
    )
    if not serve_comparable:
        print(
            "bench-regression: serve load shape differs (baseline "
            f"{[baseline.get(k) for k in SERVE_SHAPE]}, fresh "
            f"{[fresh.get(k) for k in SERVE_SHAPE]}) — skipping serve "
            "metrics"
        )

    # Machine-speed normalization for wall-clock metrics.
    base_ref = baseline.get("machine_ref_sgemm_out_seconds")
    fresh_ref = fresh.get("machine_ref_sgemm_out_seconds")
    if base_ref and fresh_ref:
        scale = min(5.0, max(0.2, fresh_ref / base_ref))
        print(
            f"bench-regression: machine ref {base_ref:.3g}s -> "
            f"{fresh_ref:.3g}s; timing limits scaled by {scale:.3g}"
        )
    else:
        scale = 1.0
        print("bench-regression: no machine reference in one of the "
              "JSONs; comparing timings unscaled")

    failures = []
    for key in GATED_KEYS:
        if key in SHARD_KEYS and not shard_comparable:
            continue
        if key in SERVE_KEYS and not serve_comparable:
            continue
        base = baseline.get(key)
        new = fresh.get(key)
        if base is None:
            print(f"bench-regression: {key} absent from baseline, skipping")
            continue
        if new is None:
            if key in OPTIONAL_KEYS:
                print(
                    f"bench-regression: {key} absent from fresh results "
                    "(optional metric — e.g. sharding disabled on this "
                    "runner), skipping"
                )
                continue
            failures.append(f"{key}: missing from fresh results")
            continue
        limit = base * (1.0 + args.tolerance)
        if key.endswith("_seconds"):
            limit *= scale
        verdict = "OK" if new <= limit else "REGRESSED"
        print(
            f"bench-regression: {key}: baseline={base:.6g} fresh={new:.6g} "
            f"(limit {limit:.6g}) {verdict}"
        )
        if new > limit:
            failures.append(
                f"{key} regressed: {new:.6g} > {base:.6g} "
                f"(+{(new / base - 1.0):.1%}, tolerance {args.tolerance:.0%})"
            )
    # Structural (machine-independent) gate: a plan-store warm start must
    # beat the cold compile it replaces *within the same run* — both
    # numbers come from the same process moments apart, so no scaling or
    # tolerance applies.  Skipped when the fresh results predate the
    # store metrics.
    warm = fresh.get("plan_store_warm_start_seconds")
    cold = fresh.get("plan_store_cold_compile_seconds")
    if warm is None or cold is None:
        print("bench-regression: plan-store metrics absent from fresh "
              "results, skipping warm-vs-cold check")
    else:
        verdict = "OK" if warm < cold else "REGRESSED"
        print(
            f"bench-regression: plan_store warm={warm:.6g} cold={cold:.6g} "
            f"(warm must be < cold) {verdict}"
        )
        if warm >= cold:
            failures.append(
                f"plan_store_warm_start_seconds {warm:.6g} not below "
                f"plan_store_cold_compile_seconds {cold:.6g}"
            )
    # Structural autotune gate, same shape: the promoted plan's steady
    # state must not exceed the canonical plan's, measured in the same
    # run.  Skipped when the fresh results predate the autotune metrics.
    tuned = fresh.get("autotuned_exec_seconds")
    canonical = fresh.get("autotune_canonical_exec_seconds")
    if tuned is None or canonical is None:
        print("bench-regression: autotune metrics absent from fresh "
              "results, skipping tuned-vs-canonical check")
    else:
        verdict = "OK" if tuned <= canonical else "REGRESSED"
        print(
            f"bench-regression: autotune tuned={tuned:.6g} "
            f"canonical={canonical:.6g} (tuned must be <= canonical) "
            f"{verdict}"
        )
        if tuned > canonical:
            failures.append(
                f"autotuned_exec_seconds {tuned:.6g} above "
                f"autotune_canonical_exec_seconds {canonical:.6g}"
            )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("bench-regression: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
