"""Table II — Common Sub-expression Elimination (graph mode).

Expected shape: rows 1-2 equal (CSE + x+x→2x keep one GEMM), row 3 ≈ 2×,
row 4 ≈ 3× (no CSE without explicit parenthesization).
"""

import pytest

from repro.frameworks import pytsim, tfsim


def _tf_fns():
    @tfsim.function
    def s(a, b):
        return tfsim.transpose(a) @ b

    @tfsim.function
    def s_plus_s(a, b):
        return tfsim.transpose(a) @ b + tfsim.transpose(a) @ b

    @tfsim.function
    def paren(a, b):
        return tfsim.transpose(tfsim.transpose(a) @ b) @ (tfsim.transpose(a) @ b)

    @tfsim.function
    def noparen(a, b):
        return tfsim.transpose(tfsim.transpose(a) @ b) @ tfsim.transpose(a) @ b

    return s, s_plus_s, paren, noparen


def _pyt_fns():
    @pytsim.jit.script
    def s(a, b):
        return a.T @ b

    @pytsim.jit.script
    def s_plus_s(a, b):
        return a.T @ b + a.T @ b

    @pytsim.jit.script
    def paren(a, b):
        return (a.T @ b).T @ (a.T @ b)

    @pytsim.jit.script
    def noparen(a, b):
        return (a.T @ b).T @ a.T @ b

    return s, s_plus_s, paren, noparen


@pytest.fixture(scope="module")
def tf_fns(dense):
    fns = _tf_fns()
    for fn in fns:
        fn.get_concrete(dense[0], dense[1])
    return fns


@pytest.fixture(scope="module")
def pyt_fns(dense):
    fns = _pyt_fns()
    for fn in fns:
        fn.get_concrete(dense[0], dense[1])
    return fns


ROWS = ["AtB", "AtB_plus_AtB", "paren_gram", "noparen_gram"]


@pytest.mark.benchmark(group="table2-cse-tf")
@pytest.mark.parametrize("row", range(4), ids=ROWS)
def test_tf(benchmark, dense, tf_fns, row):
    a, b, _ = dense
    fn = tf_fns[row]
    benchmark(lambda: fn(a, b))


@pytest.mark.benchmark(group="table2-cse-pyt")
@pytest.mark.parametrize("row", range(4), ids=ROWS)
def test_pyt(benchmark, dense, pyt_fns, row):
    a, b, _ = dense
    fn = pyt_fns[row]
    benchmark(lambda: fn(a, b))
