"""Quickstart: the ``repro.api`` Session — one compile/run surface.

Run:  python examples/quickstart.py [n]

Walks through the paper's Table I expression (AᵀB)ᵀ(AᵀB) on both
simulated backends through a single :class:`repro.api.Session`:

* eager mode pays 3 GEMMs (AᵀB computed twice);
* graph mode's CSE removes one — the paper's ~1.5× observation;
* the session's plan cache dedupes the *structurally identical* tfsim
  and pytsim traces: the second backend is a cache hit, no recompile;
* ``session.stats()`` shows it all — hits/misses plus per-plan timings.
"""

import sys
import time

from repro import limit_threads

limit_threads(1)  # single-threaded, like the paper (set before BLAS use)

from repro import api  # noqa: E402
from repro import tensor as T  # noqa: E402
from repro.frameworks import tfsim  # noqa: E402


def gram(a, b):
    """(AᵀB)ᵀ(AᵀB) — parenthesized, so graph mode can CSE the shared AᵀB."""
    return (a.T @ b).T @ (a.T @ b)


def main(n: int = 800) -> None:
    print(f"== quickstart (n = {n}) ==\n")
    A = T.random_general(n, seed=1)
    B = T.random_general(n, seed=2)

    # ----- eager mode: every op runs immediately, nothing is shared --------
    t0 = time.perf_counter()
    eager = tfsim.transpose(tfsim.transpose(A) @ B) @ (tfsim.transpose(A) @ B)
    t_eager = time.perf_counter() - t0
    print(f"eager       : {t_eager:.4f}s  (3 GEMMs: AᵀB computed twice)")

    # ----- graph mode through an explicit Session -----------------------------
    with api.Session() as session:
        f = session.compile(gram, backend="tfsim")
        f(A, B)  # first call traces + optimizes (excluded, like the paper)
        t0 = time.perf_counter()
        graph = session.run(f, A, B)
        t_graph = time.perf_counter() - t0
        kernels = f.last_report.kernel_counts()
        print(f"tfsim graph : {t_graph:.4f}s  (kernels: {kernels})")
        print(f"eager / graph ratio: {t_eager / t_graph:.2f}x  (paper: ~1.5x)\n")

        assert graph.allclose(eager, rtol=1e-2), "modes disagree!"

        # ----- the same program, PyTorch-flavoured: a plan-cache *hit* -------
        g = session.compile(gram, backend="pytsim")
        g(A, B)
        print(f"pytsim graph kernels: {g.last_report.kernel_counts()}")
        shared = f.get_concrete(A, B).plan is g.get_concrete(A, B).plan
        print(f"structurally identical trace -> one shared plan: {shared}")

        # ----- throughput serving: one plan, many feeds ----------------------
        feeds = [[A, T.random_general(n, seed=100 + i)] for i in range(8)]
        batch = session.run_batch(f, feeds, workers=2)
        print(f"run_batch   : {len(batch)} feed sets through one cached plan")

        # ----- what the session saw ------------------------------------------
        print("\n" + session.stats().render())

    # ----- inspect what the optimizer saw and produced ------------------------
    from repro.ir.pretty import render_graph

    print("\n" + render_graph(f.initial_graph(A, B), title="initial DAG (Fig. 3 left)"))
    print("\n" + render_graph(f.optimized_graph(A, B), title="optimized DAG (Fig. 3 right)"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
