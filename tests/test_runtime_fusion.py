"""The post-schedule fusion stage (repro.runtime.fusion).

Structure-level checks (what fuses, what must not) plus the fused-call
report representation.  Bit-parity of fused execution across the full
workload suite lives in tests/test_runtime_plans.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import Interpreter, trace
from repro.passes import default_pipeline
from repro.runtime import compile_plan
from repro.tensor import random_general


def _plan_pair(fn, tensors, *, pipeline=True):
    graph = trace(fn, tensors)
    if pipeline:
        graph = default_pipeline().run(graph)
    feeds = [t.data for t in tensors]
    return compile_plan(graph), compile_plan(graph, fusion=True), feeds


@pytest.fixture
def ab():
    return [random_general(12, seed=1), random_general(12, seed=2)]


class TestElementwiseChains:
    def test_chain_collapses_to_one_instruction(self, ab):
        plain, fused, feeds = _plan_pair(
            lambda a, b: 2.0 * a + b - a, ab, pipeline=False
        )
        assert len(fused.instructions) < len(plain.instructions)
        assert fused.fusion_stats.ew_chains == 1
        assert fused.fusion_stats.ew_ops_fused == 3
        (inst,) = [i for i in fused.instructions if i.op == "fused"]
        assert inst.calls[0].kernel == "fused(scale+add+sub)"
        assert inst.calls[0].node_op == "fused"

    def test_combined_record_sums_member_flops(self, ab):
        plain, fused, feeds = _plan_pair(
            lambda a, b: 2.0 * a + b - a, ab, pipeline=False
        )
        _, rep_plain = plain.execute(feeds)
        _, rep_fused = fused.execute(feeds)
        assert rep_fused.total_flops == rep_plain.total_flops
        assert rep_fused.peak_bytes == rep_plain.peak_bytes
        assert len(rep_fused.calls) < len(rep_plain.calls)

    def test_multiuse_value_blocks_fusion(self, ab):
        # t is consumed twice -> it must be materialized, not fused away.
        def fn(a, b):
            t = a + b
            return t - a, t + b

        plain, fused, feeds = _plan_pair(fn, ab, pipeline=False)
        assert fused.fusion_stats.ew_chains == 0
        outs_p, _ = plain.execute(feeds)
        outs_f, _ = fused.execute(feeds)
        for p, f in zip(outs_p, outs_f):
            assert p.tobytes() == f.tobytes()

    def test_single_elementwise_op_stays_unfused(self, ab):
        _, fused, _ = _plan_pair(lambda a, b: a + b, ab, pipeline=False)
        assert fused.fusion_stats.ew_chains == 0
        assert fused.fusion_stats.instructions_after == 1

    def test_describe_shows_fusion_summary(self, ab):
        _, fused, _ = _plan_pair(lambda a, b: 2.0 * a + b - a, ab,
                                 pipeline=False)
        text = fused.describe()
        assert "fusion:" in text and "fused(" in text


class TestGemmAlphaFold:
    def test_trailing_scale_folds(self, ab):
        plain, fused, feeds = _plan_pair(lambda a, b: 2.0 * (a @ b), ab,
                                         pipeline=False)
        assert fused.fusion_stats.gemm_folds == 1
        assert len(fused.instructions) == len(plain.instructions) - 1
        (inst,) = fused.instructions
        assert inst.calls[0].kernel == "fused(gemm+scale)"
        # FLOPs: gemm's 2mnk plus the scale's mn, exactly as unfused.
        _, rp = plain.execute(feeds)
        _, rf = fused.execute(feeds)
        assert rf.total_flops == rp.total_flops

    def test_neg_folds_as_minus_alpha(self, ab):
        plain, fused, feeds = _plan_pair(lambda a, b: -(a @ b), ab,
                                         pipeline=False)
        assert fused.fusion_stats.gemm_folds == 1
        outs_p, _ = plain.execute(feeds)
        outs_f, _ = fused.execute(feeds)
        assert outs_p[0].tobytes() == outs_f[0].tobytes()

    def test_only_one_factor_folds_per_gemm(self, ab):
        """A second trailing scale must NOT cascade into alpha: combining
        two rounded multiplies into one premultiplied factor drifts a ULP
        from the interpreter.  The first scale folds; the rest stay
        elementwise (and chain-fuse among themselves)."""
        expr = lambda a, b: -(3.0 * (2.0 * (a @ b)))  # noqa: E731
        _, fused, feeds = _plan_pair(expr, ab, pipeline=False)
        assert fused.fusion_stats.gemm_folds == 1
        kernels = [i.calls[0].kernel for i in fused.instructions]
        assert "fused(gemm+scale)" in kernels
        graph = trace(expr, ab)
        outs_i, rep_i = Interpreter(record=True).run(graph, feeds)
        outs_f, rep_f = fused.execute(feeds)
        assert outs_i[0].tobytes() == outs_f[0].tobytes()
        assert rep_i.total_flops == rep_f.total_flops
        assert rep_i.peak_bytes == rep_f.peak_bytes

    def test_inexact_factor_pair_stays_bit_identical(self, ab):
        """Regression for the cascade bug: 3.0 * (3.0 * (A@B)) — folding
        both factors as alpha=9.0 differs from two sequential multiplies
        by 1 ULP; single-fold keeps bit parity."""
        expr = lambda a, b: 3.0 * (3.0 * (a @ b))  # noqa: E731
        graph = trace(expr, ab)
        feeds = [t.data for t in ab]
        outs_i, _ = Interpreter(record=True).run(graph, feeds)
        fused = compile_plan(graph, fusion=True)
        arena = fused.new_arena()
        for use in (None, arena, arena):
            outs_f, _ = fused.execute(feeds, record=False, arena=use)
            assert outs_i[0].tobytes() == outs_f[0].tobytes()

    def test_multiuse_gemm_result_not_folded(self, ab):
        def fn(a, b):
            t = a @ b
            return 2.0 * t + t

        _, fused, feeds = _plan_pair(fn, ab, pipeline=False)
        assert fused.fusion_stats.gemm_folds == 0

    def test_gemv_not_folded(self):
        # Only the dense GEMM path carries a foldable alpha; a
        # matrix-vector product lowers to GEMV and keeps its scale.
        a = random_general(12, seed=1)
        x = random_general(12, seed=3)
        _, fused, feeds = _plan_pair(
            lambda p, q: 2.0 * (p @ q[:, 0:1]), [a, x], pipeline=False
        )
        assert fused.fusion_stats.gemm_folds == 0
        outs, rep = fused.execute(feeds)
        assert "gemv" in {c.kernel for c in rep.calls}


class TestGemmBetaFold:
    """A single-consumer ``add``/``sub`` of a GEMM result with a *dead*
    addend folds into the BLAS call's C-accumulate (``beta=±1``).  The
    contract: bit-identical to the interpreter in every fusion × arena
    combination, FLOP totals and modelled memory preserved."""

    EXPRS = {
        "add": lambda a, b: a @ b + b @ a,
        "add_flipped": lambda a, b: (a + a) + (a @ b),
        "sub_g_minus_c": lambda a, b: a @ b - b @ a,
        "sub_c_minus_g": lambda a, b: (a + b) - (a @ b),
    }

    @pytest.mark.parametrize("name", EXPRS, ids=list(EXPRS))
    def test_folds_and_stays_bit_identical(self, name, ab):
        expr = self.EXPRS[name]
        graph = trace(expr, ab)
        feeds = [t.data for t in ab]
        outs_i, rep_i = Interpreter(record=True).run(graph, feeds)
        fused = compile_plan(graph, fusion=True)
        assert fused.fusion_stats.gemm_beta_folds == 1
        arena = fused.new_arena()
        for use in (None, arena, arena):  # per-call, warming, warm
            outs_f, rep_f = fused.execute(feeds, arena=use)
            assert outs_i[0].tobytes() == outs_f[0].tobytes()
            assert rep_f.total_flops == rep_i.total_flops
            assert rep_f.peak_bytes == rep_i.peak_bytes
            assert rep_f.live_bytes == rep_i.live_bytes

    def test_combined_call_record(self, ab):
        fused = _plan_pair(lambda a, b: a @ b + b @ a, ab, pipeline=False)[1]
        (inst,) = [i for i in fused.instructions if i.fused_events is not None]
        assert inst.calls[0].kernel == "fused(gemm+add)"
        assert inst.calls[0].node_op == "fused"

    def test_live_addend_blocks_fold(self, ab):
        # The addend is an input — never dead, so the in-place accumulate
        # would overwrite a caller-visible value.  Must not fold.
        _, fused, _ = _plan_pair(lambda a, b: a @ b + a, ab, pipeline=False)
        assert fused.fusion_stats.gemm_beta_folds == 0

    def test_multiuse_addend_blocks_fold(self, ab):
        def fn(a, b):
            t = a + b
            return a @ b + t, t

        _, fused, _ = _plan_pair(fn, ab, pipeline=False)
        assert fused.fusion_stats.gemm_beta_folds == 0


class TestFoldAwareScheduling:
    """Pass 0: a beta-foldable gemm→add/sub pair whose members are *not*
    adjacent (the dead addend's producer sits between them) becomes
    adjacent by hoisting the independent interveners above the GEMM —
    then pass 1b folds as usual.  Values must be bit-identical to the
    interpreter; the schedule (and hence the report's alloc/free
    ordering) legitimately changes, so only value parity and FLOP
    totals are pinned here."""

    def test_non_adjacent_pair_folds(self, ab):
        # Schedule: [gemm, sub(c-producer), add] — sub is independent of
        # the gemm and produces the dead addend.
        def fn(a, b):
            return a @ b + (b - a)

        plain, fused, feeds = _plan_pair(fn, ab, pipeline=False)
        assert fused.fusion_stats.fold_sinks == 1
        assert fused.fusion_stats.gemm_beta_folds == 1
        graph = trace(fn, ab)
        outs_i, rep_i = Interpreter(record=True).run(graph, feeds)
        arena = fused.new_arena()
        for use in (None, arena, arena):
            outs_f, rep_f = fused.execute(feeds, arena=use)
            assert outs_i[0].tobytes() == outs_f[0].tobytes()
            assert rep_f.total_flops == rep_i.total_flops

    def test_adjacent_pair_needs_no_sink(self, ab):
        # The addend's producer is scheduled *before* the GEMM already:
        # [add, gemm, add] — the pair is adjacent, nothing to hoist.
        _, fused, _ = _plan_pair(lambda a, b: (a + a) + a @ b, ab,
                                 pipeline=False)
        assert fused.fusion_stats.fold_sinks == 0
        assert fused.fusion_stats.gemm_beta_folds == 1

    def test_two_gemm_sum_sinks_once_and_folds(self, ab):
        # a@b + b@a: the first GEMM's consumer is non-adjacent (the
        # second GEMM sits between) — the scheduler hoists it, and
        # exactly one fold fires, bit-identically.
        plain, fused, feeds = _plan_pair(lambda a, b: a @ b + b @ a, ab,
                                         pipeline=False)
        assert fused.fusion_stats.fold_sinks == 1
        assert fused.fusion_stats.gemm_beta_folds == 1
        outs_p, _ = plain.execute(feeds)
        outs_f, _ = fused.execute(feeds)
        assert outs_p[0].tobytes() == outs_f[0].tobytes()

    def test_dependent_intervener_blocks_sink(self, ab):
        # The instruction between gemm and add *reads the gemm result*
        # (transpose of it): hoisting would read a stale slot, so the
        # scheduler must leave the order alone and no fold fires.
        def fn(a, b):
            g = a @ b
            return g + g.T

        _, fused, feeds = _plan_pair(fn, ab, pipeline=False)
        assert fused.fusion_stats.fold_sinks == 0
        assert fused.fusion_stats.gemm_beta_folds == 0
        graph = trace(fn, ab)
        outs_i, _ = Interpreter(record=True).run(graph, feeds)
        outs_f, _ = fused.execute(feeds)
        assert outs_i[0].tobytes() == outs_f[0].tobytes()

    def test_multiple_interveners_sink_together(self, ab):
        # Two independent producers (chain-fused or not) between the
        # GEMM and its consumer: all hoist, the fold fires, values are
        # bit-identical in every mode.
        def fn(a, b):
            return a @ b + (b - a + b)

        _, fused, feeds = _plan_pair(fn, ab, pipeline=False)
        assert fused.fusion_stats.fold_sinks == 1
        assert fused.fusion_stats.gemm_beta_folds == 1
        graph = trace(fn, ab)
        outs_i, _ = Interpreter(record=True).run(graph, feeds)
        arena = fused.new_arena()
        for use in (None, arena, arena):
            outs_f, _ = fused.execute(feeds, arena=use)
            assert outs_i[0].tobytes() == outs_f[0].tobytes()

    def test_describe_mentions_sinks(self, ab):
        _, fused, _ = _plan_pair(lambda a, b: a @ b + (b - a), ab,
                                 pipeline=False)
        assert "1 beta-folds (1 scheduled)" in fused.fusion_stats.describe()

    def test_alpha_folded_gemm_not_beta_folded(self, ab):
        # alpha != 1 would let BLAS FMA-contract alpha·acc against C —
        # one rounding where the interpreter has two.  The alpha fold
        # wins (adjacent scale); the add stays elementwise.
        def fn(a, b):
            return 2.0 * (a @ b) + (b @ a)

        graph = trace(fn, ab)
        feeds = [t.data for t in ab]
        fused = compile_plan(graph, fusion=True)
        assert fused.fusion_stats.gemm_folds == 1
        # The second gemm (b@a) has a live single-consumer... its result
        # feeds the add whose other operand is the alpha-folded site's
        # result; whichever way it resolved, outputs stay bit-identical.
        outs_i, _ = Interpreter(record=True).run(graph, feeds)
        for use in (None, fused.new_arena()):
            outs_f, _ = fused.execute(feeds, arena=use)
            assert outs_i[0].tobytes() == outs_f[0].tobytes()

    def test_gemm_result_plus_itself_not_beta_folded(self, ab):
        def fn(a, b):
            t = a @ b
            return t + t

        _, fused, _ = _plan_pair(fn, ab, pipeline=False)
        assert fused.fusion_stats.gemm_beta_folds == 0

    def test_fold_never_mutates_a_passed_through_feed(self, ab):
        """Slot liveness is not object ownership: an op can hand an
        *input array* through unchanged (here a fori_loop identity
        body), so the accumulate must never write through the addend
        object.  Regression: overwrite_c=1 in per-call mode corrupted
        the caller's feed and made repeat calls disagree."""
        from repro.frameworks import tfsim

        def fn(p, q):
            return tfsim.fori_loop(3, lambda i, x, pp: x, q, [p]) + p @ p

        graph = trace(fn, ab)
        feeds = [np.asfortranarray(t.data) for t in ab]
        kept = [f.copy() for f in feeds]
        fused = compile_plan(graph, fusion=True)
        assert fused.fusion_stats.gemm_beta_folds == 1
        first, _ = fused.execute(feeds, record=False)
        first = [o.copy() for o in first]
        for f, k in zip(feeds, kept):
            assert f.tobytes() == k.tobytes(), "caller feed was mutated"
        again, _ = fused.execute(feeds, record=False)
        assert first[0].tobytes() == again[0].tobytes()
        outs_i, _ = Interpreter(record=True).run(graph, feeds)
        assert outs_i[0].tobytes() == again[0].tobytes()

    def test_mixed_operand_dtypes_raise_like_unfused(self, ab):
        """A beta-folded GEMM must not silently downcast a mismatched B
        operand: the unfused plan raises DTypeError, so the fused one
        must too (regression: only the addend dtype was checked)."""
        from repro.errors import DTypeError
        from repro.frameworks import tfsim
        from repro.tensor import Tensor

        k64 = np.ones((12, 12), dtype=np.float64)

        def fn(a, b):
            return b @ a + a @ tfsim.constant(k64)

        # Trace uniformly in float64 (tracing rejects mixed dtypes)...
        a64 = [Tensor(t.data.astype(np.float64)) for t in ab]
        graph = trace(fn, a64)
        fused = compile_plan(graph, fusion=True)
        assert fused.fusion_stats.gemm_beta_folds == 1
        plain = compile_plan(graph)
        # ...then feed float32: the float64 const makes `a @ K` mixed at
        # execution time.
        feeds32 = [t.data for t in ab]
        with pytest.raises(DTypeError):
            plain.execute(feeds32, record=False)
        with pytest.raises(DTypeError):
            fused.execute(feeds32, record=False)
        with pytest.raises(DTypeError):
            fused.execute(feeds32, record=False, arena=fused.new_arena())

    def test_integer_feeds_fall_back(self, ab):
        graph = trace(lambda a, b: a @ b + b @ a, ab)
        fused = compile_plan(graph, fusion=True)
        assert fused.fusion_stats.gemm_beta_folds == 1
        feeds = [np.arange(144, dtype=np.int64).reshape(12, 12),
                 np.ones((12, 12), dtype=np.int64)]
        ref, _ = fused.execute(feeds, record=False)
        plain = compile_plan(graph)
        exp, _ = plain.execute(feeds, record=False)
        assert ref[0].dtype == exp[0].dtype
        assert ref[0].tobytes() == exp[0].tobytes()
        outs, _ = fused.execute(feeds, record=False, arena=fused.new_arena())
        assert outs[0].tobytes() == exp[0].tobytes()


class TestArenaAliasing:
    """Fused sites whose destination slot recycles an operand slot must
    stage through the scratch buffer, not clobber live operands."""

    def test_recycled_destination_slots_stay_correct(self):
        ops = [random_general(16, seed=s) for s in (1, 2, 3)]

        def fn(a, b, c):
            acc = a
            for _ in range(6):
                acc = (acc @ b + c - a) @ a.T
            return 2.0 * acc + b - (-c) * 0.5

        graph = default_pipeline().run(trace(fn, ops))
        feeds = [t.data for t in ops]
        outs_i, _ = Interpreter(record=True).run(graph, feeds)
        plan = compile_plan(graph, fusion=True)
        assert any(i.scratch is not None for i in plan.instructions)
        arena = plan.new_arena()
        for _ in range(3):
            outs_f, _ = plan.execute(feeds, record=False, arena=arena)
            assert all(
                i.tobytes() == f.tobytes() for i, f in zip(outs_i, outs_f)
            )

    def test_fused_chain_output_can_be_graph_output(self, ab):
        plain, fused, feeds = _plan_pair(
            lambda a, b: (2.0 * a + b, a @ b), ab, pipeline=False
        )
        outs_p, _ = plain.execute(feeds)
        outs_f, _ = fused.execute(feeds)
        for p, f in zip(outs_p, outs_f):
            assert p.tobytes() == f.tobytes()


class TestPlanProperties:
    def test_plan_flops_matches_report_with_fusion(self, ab):
        _, fused, feeds = _plan_pair(
            lambda a, b: 2.0 * (a @ b) + b - a, ab, pipeline=False
        )
        _, report = fused.execute(feeds)
        assert fused.flops == report.total_flops

    def test_fusion_stats_bookkeeping(self, ab):
        plain, fused, _ = _plan_pair(
            lambda a, b: 2.0 * a + b - a, ab, pipeline=False
        )
        st = fused.fusion_stats
        assert st.instructions_before == len(plain.instructions)
        assert st.instructions_after == len(fused.instructions)
        assert st.sites == st.ew_chains + st.gemm_folds
        assert plain.fusion_stats is None

    def test_fused_events_replay_matches_interpreter_memory(self, ab):
        fn = lambda a, b: (a @ b + b - a) @ (2.0 * a)  # noqa: E731
        graph = trace(fn, ab)
        feeds = [t.data for t in ab]
        _, rep_i = Interpreter(record=True).run(graph, feeds)
        fused = compile_plan(graph, fusion=True)
        _, rep_f = fused.execute(feeds)
        assert rep_f.peak_bytes == rep_i.peak_bytes
        assert rep_f.live_bytes == rep_i.live_bytes
