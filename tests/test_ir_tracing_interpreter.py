"""Tests for tracing (Python → Graph) and the interpreter (Graph → arrays)."""

import numpy as np
import pytest

from repro.errors import GraphError, TracingError
from repro.ir import Graph, builder, run_graph, trace
from repro.ir.interpreter import Interpreter
from repro.ir.pretty import graph_to_dot, render_graph, summarize_graph
from repro.ir.tracing import SymbolicTensor, trace_loop
from repro.tensor import random_general, random_vector
from repro.tensor.properties import Property


class TestTracing:
    def test_simple_expression(self, operands):
        g = trace(lambda a, b: a @ b + a @ b, [operands["A"], operands["B"]])
        counts = g.op_counts()
        assert counts["matmul"] == 2  # pre-optimization: duplicates kept
        assert counts["add"] == 1

    def test_input_order_matches_args(self, operands):
        g = trace(lambda a, b, c: (a @ b) @ c,
                  [operands["A"], operands["B"], operands["C"]])
        assert len(g.inputs) == 3
        assert [i.attrs["index"] for i in g.inputs] == [0, 1, 2]

    def test_input_props_recorded(self, operands):
        g = trace(lambda l: l @ l, [operands["L"]])
        props = g.inputs[0].attrs["props"]
        assert Property.LOWER_TRIANGULAR in props

    def test_python_loop_unrolls(self, operands):
        def fn(a, b):
            acc = a @ b
            for _ in range(3):
                acc = acc + a @ b
            return acc

        g = trace(fn, [operands["A"], operands["B"]])
        assert g.op_counts()["matmul"] == 4  # unrolled, not a loop node

    def test_multiple_outputs(self, operands):
        g = trace(lambda a, b: (a @ b, a + b), [operands["A"], operands["B"]])
        assert len(g.outputs) == 2

    def test_non_symbolic_return_rejected(self, operands):
        with pytest.raises(TracingError):
            trace(lambda a: 42, [operands["A"]])

    def test_eager_constant_folds_into_trace(self, operands, n):
        from repro.tensor import eye

        i = eye(n)

        g = trace(lambda a: i - a, [operands["A"]])
        assert g.op_counts()["const"] == 1

    def test_reflected_matmul_with_tensor(self, operands):
        b = operands["B"]
        g = trace(lambda a: b @ a, [operands["A"]])
        assert g.op_counts()["const"] == 1
        outs, _ = run_graph(g, [operands["A"]])
        assert np.allclose(outs[0], b.numpy() @ operands["A"].numpy(), atol=1e-4)

    def test_scalar_ops(self, operands):
        g = trace(lambda a: 2.0 * a - a * 0.5, [operands["A"]])
        outs, _ = run_graph(g, [operands["A"]])
        assert np.allclose(outs[0], 1.5 * operands["A"].numpy(), atol=1e-5)

    def test_getitem_tracing(self, operands):
        g = trace(lambda a: a[2, 3], [operands["A"]])
        outs, _ = run_graph(g, [operands["A"]])
        assert outs[0].shape == (1, 1)
        assert outs[0][0, 0] == pytest.approx(
            float(operands["A"].numpy()[2, 3]), rel=1e-6)


class TestInterpreter:
    def test_numeric_agreement(self, operands):
        a, b, x = operands["A"], operands["B"], operands["x"]
        g = trace(lambda p, q, v: (p.T @ q) @ v + v, [a, b, x])
        outs, _ = run_graph(g, [a, b, x])
        ref = (a.numpy().T @ b.numpy()) @ x.numpy() + x.numpy()
        assert np.allclose(outs[0], ref, atol=1e-4)

    def test_feeds_by_name(self, operands):
        a, b = operands["A"], operands["B"]
        g = trace(lambda p, q: p @ q, [a, b])
        feeds = {g.inputs[0].name: a, g.inputs[1].name: b}
        outs, _ = run_graph(g, feeds)
        assert np.allclose(outs[0], a.numpy() @ b.numpy(), atol=1e-4)

    def test_feed_count_mismatch(self, operands):
        g = trace(lambda p, q: p @ q, [operands["A"], operands["B"]])
        with pytest.raises(GraphError):
            run_graph(g, [operands["A"]])

    def test_feed_shape_mismatch(self, operands):
        g = trace(lambda p, q: p @ q, [operands["A"], operands["B"]])
        with pytest.raises(GraphError):
            run_graph(g, [operands["A"], operands["x"]])

    def test_kernel_accounting_gemm(self, operands):
        n = operands["A"].shape[0]
        g = trace(lambda p, q: p @ q, [operands["A"], operands["B"]])
        _, report = run_graph(g, [operands["A"], operands["B"]])
        assert report.kernel_counts() == {"gemm": 1}
        assert report.total_flops == 2 * n**3

    def test_kernel_accounting_gemv(self, operands):
        g = trace(lambda p, v: p @ v, [operands["A"], operands["x"]])
        _, report = run_graph(g, [operands["A"], operands["x"]])
        assert report.kernel_counts() == {"gemv": 1}

    def test_kernel_accounting_dot(self, operands):
        g = trace(lambda u, v: u.T @ v, [operands["x"], operands["y"]])
        _, report = run_graph(g, [operands["x"], operands["y"]])
        assert "dot" in report.kernel_counts()

    def test_trans_flags_executed(self, operands):
        a, b = operands["A"], operands["B"]
        node = builder.matmul(
            builder.input_node(a.shape, a.dtype, name="p"),
            builder.input_node(b.shape, b.dtype, name="q"),
            trans_a=True,
            trans_b=True,
        )
        g = Graph([node])
        outs, _ = run_graph(g, [a, b])
        assert np.allclose(outs[0], a.numpy().T @ b.numpy().T, atol=1e-4)

    def test_memory_tracking_positive(self, operands):
        g = trace(lambda p, q: p @ q, [operands["A"], operands["B"]])
        _, report = run_graph(g, [operands["A"], operands["B"]])
        assert report.peak_bytes >= operands["A"].nbytes

    def test_record_false_skips_accounting(self, operands):
        g = trace(lambda p, q: p @ q, [operands["A"], operands["B"]])
        interp = Interpreter(record=False)
        _, report = interp.run(g, [operands["A"].data, operands["B"].data])
        assert report.calls == []


class TestLoopNode:
    def test_loop_executes_trip_count_times(self, operands):
        a, b = operands["A"], operands["B"]

        def fn(p, q):
            def body(i, acc, pp, qq):
                return acc + pp @ qq

            init = (p @ q) * 0.0
            return trace_loop(body, init, [p, q], trip_count=4)

        g = trace(fn, [a, b])
        outs, report = run_graph(g, [a, b])
        assert np.allclose(outs[0], 4 * (a.numpy() @ b.numpy()), atol=1e-3)
        # without LICM: 1 (init) + 4 (loop) gemms
        assert report.kernel_counts()["gemm"] == 5

    def test_loop_zero_trips(self, operands):
        a = operands["A"]

        def fn(p):
            def body(i, acc, pp):
                return acc + pp

            return trace_loop(body, p, [p], trip_count=0)

        outs, _ = run_graph(trace(fn, [a]), [a])
        assert np.allclose(outs[0], a.numpy())

    def test_loop_uses_index(self, operands):
        """Carried value sees a fresh idx each iteration (values 0,1,2)."""
        x = operands["x"]

        def fn(v):
            def body(i, acc, vv):
                # acc + i-th scaled vv: effectively sum of i over trips
                return acc + i @ vv.T  # (1x1)@(1xn) -> 1xn... shapes wrong
            return None

        # simpler: check via interpreter manually constructing the loop
        idx = builder.input_node((1, 1), "float32", name="i")
        carried = builder.input_node((1, 1), "float32", name="c")
        body = Graph([builder.add(carried, idx)], inputs=[idx, carried])
        init = builder.const(np.zeros((1, 1), dtype=np.float32))
        node = builder.loop(body, init, [], trip_count=4)
        outs, _ = run_graph(Graph([node]), [])
        assert outs[0][0, 0] == pytest.approx(0 + 1 + 2 + 3)


class TestPretty:
    def test_render_contains_ops(self, operands):
        g = trace(lambda a, b: (a.T @ b).T @ (a.T @ b),
                  [operands["A"], operands["B"]])
        text = render_graph(g, title="fig3")
        assert "matmul" in text and "transpose" in text and "->ret" in text

    def test_summarize(self, operands):
        g = trace(lambda a, b: a @ b, [operands["A"], operands["B"]])
        s = summarize_graph(g)
        assert s["matmul"] == 1 and s["__nodes__"] == 3

    def test_dot_export_wellformed(self, operands):
        g = trace(lambda a, b: a @ b + a, [operands["A"], operands["B"]])
        dot = graph_to_dot(g)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "shape=ellipse" in dot  # I/O circles
        assert "shape=box" in dot  # op rectangles


class TestReportMemoryModel:
    """Regression tests for ExecutionReport peak/live accounting."""

    def test_peak_counts_both_gemm_results(self, operands):
        """In (AᵀB)ᵀ(AᵀB) after CSE, the shared AᵀB stays live while the
        final product is computed: peak ≥ 2 result matrices."""
        from repro.passes import default_pipeline

        g = default_pipeline().run(
            trace(lambda a, b: (a.T @ b).T @ (a.T @ b),
                  [operands["A"], operands["B"]])
        )
        _, report = run_graph(g, [operands["A"], operands["B"]])
        nbytes = operands["A"].nbytes
        assert report.peak_bytes == 2 * nbytes
        # Only the graph output survives the run.
        assert report.live_bytes == nbytes

    def test_outputs_stay_live(self, operands):
        """A multi-output graph must not free intermediate results that
        are also outputs, even after their last consumer ran."""
        def fn(a, b):
            t = a @ b
            return t, t @ b

        g = trace(fn, [operands["A"], operands["B"]])
        _, report = run_graph(g, [operands["A"], operands["B"]])
        nbytes = operands["A"].nbytes
        assert report.live_bytes == 2 * nbytes  # both outputs live
        assert report.peak_bytes == 2 * nbytes

    def test_reused_input_freed_once_never(self, operands):
        """Inputs consumed by several nodes are never alloc'd or freed:
        a @ a leaves exactly one result live."""
        g = trace(lambda a: (a @ a) @ a, [operands["A"]])
        _, report = run_graph(g, [operands["A"]])
        nbytes = operands["A"].nbytes
        # a@a is freed once its consumer ran; only the output remains.
        assert report.live_bytes == nbytes
        assert report.peak_bytes == 2 * nbytes

    def test_free_clamps_at_zero(self):
        from repro.ir.interpreter import ExecutionReport

        report = ExecutionReport()
        report.alloc(100)
        report.free(250)  # over-free must not poison later peaks
        assert report.live_bytes == 0
        report.alloc(50)
        assert report.peak_bytes == 100

    def test_live_bytes_tracks_alloc_free(self):
        from repro.ir.interpreter import ExecutionReport

        report = ExecutionReport()
        report.alloc(64)
        report.alloc(32)
        assert report.live_bytes == 96
        report.free(32)
        assert report.live_bytes == 64
        assert report.peak_bytes == 96
