"""Experiment 4 (Table V) — Algebraic Manipulation.

Three equations, LHS and RHS measured separately in graph mode; the
expectation is that LHS and RHS times differ (the frameworks do *not*
rewrite across the equality):

* Eq. 9:  ``AB + AC  =  A(B + C)``      — RHS saves a whole GEMM (≈ 2×);
* Eq. 10: ``Ax − Hᵀ(Hx)  =  (A − HᵀH)x`` — LHS is three GEMVs, RHS has an
  O(n³) product (≈ 40× at n = 3000);
* Eq. 11: ``A_B B_B = [(A₁B₁); (A₂B₂)]`` — blocked structure halves the
  FLOPs (≈ 2×).  ``A_B`` is built by explicit concatenation inside the
  graph so the optimizer *could* see the construction.
"""

from __future__ import annotations

from ..bench.registry import register_experiment
from ..bench.reporting import ExperimentTable
from ..frameworks import pytsim, tfsim
from ._measure import time_compiled
from .sizes import experiment_size
from .workloads import Workloads


def _functions(n: int):
    half = n // 2

    # -- Eq. 9 ------------------------------------------------------------------
    @tfsim.function
    def tf_eq9_lhs(a, b, c):
        return a @ b + a @ c

    @pytsim.jit.script
    def pyt_eq9_lhs(a, b, c):
        return a @ b + a @ c

    @tfsim.function
    def tf_eq9_rhs(a, b, c):
        return a @ (b + c)

    @pytsim.jit.script
    def pyt_eq9_rhs(a, b, c):
        return a @ (b + c)

    # -- Eq. 10 ------------------------------------------------------------------
    @tfsim.function
    def tf_eq10_lhs(a, h, x):
        return a @ x - tfsim.transpose(h) @ (h @ x)

    @pytsim.jit.script
    def pyt_eq10_lhs(a, h, x):
        return a @ x - h.T @ (h @ x)

    @tfsim.function
    def tf_eq10_rhs(a, h, x):
        return (a - tfsim.transpose(h) @ h) @ x

    @pytsim.jit.script
    def pyt_eq10_rhs(a, h, x):
        return (a - h.T @ h) @ x

    # -- Eq. 11 (blocked) -----------------------------------------------------------
    @tfsim.function
    def tf_blocked_lhs(a1, a2, b1, b2):
        z = tfsim.zeros(half, half)
        top = tfsim.concat([a1, z], axis=1)
        bottom = tfsim.concat([z, a2], axis=1)
        ab = tfsim.concat([top, bottom], axis=0)
        bb = tfsim.concat([b1, b2], axis=0)
        return ab @ bb

    @pytsim.jit.script
    def pyt_blocked_lhs(a1, a2, b1, b2):
        z = pytsim.zeros(half, half)
        top = pytsim.cat([a1, z], dim=1)
        bottom = pytsim.cat([z, a2], dim=1)
        ab = pytsim.cat([top, bottom], dim=0)
        bb = pytsim.cat([b1, b2], dim=0)
        return ab @ bb

    @tfsim.function
    def tf_blocked_rhs(a1, a2, b1, b2):
        return tfsim.concat([a1 @ b1, a2 @ b2], axis=0)

    @pytsim.jit.script
    def pyt_blocked_rhs(a1, a2, b1, b2):
        return pytsim.cat([a1 @ b1, a2 @ b2], dim=0)

    return {
        "eq9": (tf_eq9_lhs, tf_eq9_rhs, pyt_eq9_lhs, pyt_eq9_rhs),
        "eq10": (tf_eq10_lhs, tf_eq10_rhs, pyt_eq10_lhs, pyt_eq10_rhs),
        "blocked": (tf_blocked_lhs, tf_blocked_rhs, pyt_blocked_lhs,
                    pyt_blocked_rhs),
    }


@register_experiment(
    "exp4",
    "Table V",
    "algebraic manipulation: distributivity (Eq. 9, Eq. 10) and blocked matrices",
)
def run(n: int | None = None, repetitions: int | None = None) -> ExperimentTable:
    n = experiment_size(n)
    w = Workloads(n)
    a, b, c = w.general(0), w.general(1), w.general(2)
    h = w.general(3)
    x = w.vector(0)
    a1, a2, b1, b2 = w.blocks()
    fns = _functions(n)

    table = ExperimentTable(
        title=f"Table V: algebraic manipulations, execution time (s), n = {n}",
        columns=["TF LHS", "TF RHS", "PyT LHS", "PyT RHS"],
    )

    rows = [
        ("Distributivity Eq[9]", "eq9", [a, b, c]),
        ("Distributivity Eq[10]", "eq10", [a, h, x]),
        ("Blocked matrices", "blocked", [a1, a2, b1, b2]),
    ]
    for label, key, args in rows:
        tf_lhs, tf_rhs, pyt_lhs, pyt_rhs = fns[key]
        t1 = time_compiled(tf_lhs, args, label="tf_lhs", repetitions=repetitions)
        t2 = time_compiled(tf_rhs, args, label="tf_rhs", repetitions=repetitions)
        t3 = time_compiled(pyt_lhs, args, label="pyt_lhs", repetitions=repetitions)
        t4 = time_compiled(pyt_rhs, args, label="pyt_rhs", repetitions=repetitions)
        table.add_row(
            label,
            TF_LHS=t1.best,
            TF_RHS=t2.best,
            PyT_LHS=t3.best,
            PyT_RHS=t4.best,
        )
    table.notes.append(
        "expected shape: Eq9 LHS ≈ 2× RHS; Eq10 RHS ≫ LHS (O(n³) vs O(n²)); "
        "blocked LHS ≈ 2× RHS — the frameworks never cross the equalities"
    )
    return table
