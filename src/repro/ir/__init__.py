"""Expression IR: the computational-graph layer of the simulated frameworks.

Both ``tfsim`` and ``pytsim`` lower user code to this IR — a directed
acyclic graph of :class:`~repro.ir.node.Node` objects (Fig. 3/4 of the
paper) — then run their optimization pipelines over it and execute it with
the :mod:`~repro.ir.interpreter` on top of the BLAS substrate.

Layout
------
``node``        Node objects (immutable, shape/dtype-inferred on build).
``ops``         Op registry: shape/dtype inference + arity validation.
``graph``       Graph container: outputs, topological order, rebuilds.
``builder``     Functional constructors (``matmul(a, b)``, ...).
``tracing``     SymbolicTensor + ``trace()``: Python callables → Graph.
``interpreter`` Reference executor with kernel/FLOP accounting.
``pretty``      Text / DOT rendering (regenerates Fig. 3 and Fig. 4).
``validate``    Structural well-formedness checks.
"""

from .node import Node
from .ops import OP_REGISTRY, OpSpec
from .graph import Graph
from .builder import (
    add,
    concat,
    const,
    dot,
    input_node,
    loop,
    matmul,
    neg,
    scale,
    slice_,
    sub,
    transpose,
    tridiagonal_matmul,
)
from .tracing import SymbolicTensor, trace
from .interpreter import ExecutionReport, Interpreter, run_graph
from .pretty import graph_to_dot, render_graph, summarize_graph
from .validate import validate_graph

__all__ = [
    "Node",
    "OpSpec",
    "OP_REGISTRY",
    "Graph",
    "input_node",
    "const",
    "matmul",
    "transpose",
    "add",
    "sub",
    "neg",
    "scale",
    "dot",
    "slice_",
    "concat",
    "tridiagonal_matmul",
    "loop",
    "SymbolicTensor",
    "trace",
    "Interpreter",
    "ExecutionReport",
    "run_graph",
    "render_graph",
    "summarize_graph",
    "graph_to_dot",
    "validate_graph",
]
