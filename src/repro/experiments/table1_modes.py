"""Table I — Graph mode vs Eager mode vs the MKL-C reference.

Two expressions at size n (paper: n = 3000, float32):

* ``AᵀB`` — one GEMM.  Expectation: no significant difference between the
  direct BLAS call and either framework in either mode (everyone runs the
  same kernel; "we confirm that the frameworks do link to MKL").
* ``(AᵀB)ᵀ(AᵀB)`` — Eager recomputes the common product (3 GEMMs), Graph
  mode CSEs it away (2 GEMMs): Eager ≈ 1.5× Graph.
"""

from __future__ import annotations

from ..bench.registry import register_experiment
from ..bench.reporting import Cell, ExperimentTable
from ..bench.timing import measure
from ..frameworks import pytsim, tfsim
from ._measure import time_compiled, time_eager
from .scipy_reference import gemm_reference
from .sizes import experiment_size
from .workloads import Workloads


def _tf_graph_atb():
    @tfsim.function
    def fn(a, b):
        return tfsim.transpose(a) @ b

    return fn


def _pyt_graph_atb():
    @pytsim.jit.script
    def fn(a, b):
        return a.T @ b

    return fn


def _tf_graph_gram():
    @tfsim.function
    def fn(a, b):
        return tfsim.transpose(tfsim.transpose(a) @ b) @ (tfsim.transpose(a) @ b)

    return fn


def _pyt_graph_gram():
    @pytsim.jit.script
    def fn(a, b):
        return (a.T @ b).T @ (a.T @ b)

    return fn


@register_experiment(
    "table1",
    "Table I",
    "Eager vs Graph vs direct-BLAS reference for AᵀB and (AᵀB)ᵀ(AᵀB)",
)
def run(n: int | None = None, repetitions: int | None = None) -> ExperimentTable:
    n = experiment_size(n)
    w = Workloads(n)
    a, b = w.general(0), w.general(1)
    af, bf = w.fortran(a), w.fortran(b)

    table = ExperimentTable(
        title=f"Table I: execution time (s), n = {n}",
        columns=["MKL-C", "TF eager", "PyT eager", "TF graph", "PyT graph"],
    )

    # -- row 1: AᵀB ------------------------------------------------------------
    ref = measure(lambda: gemm_reference(af, bf, trans_a=True),
                  label="mkl_c", repetitions=repetitions)
    tf_eager = time_eager(lambda: tfsim.transpose(a) @ b,
                          label="tf_eager", repetitions=repetitions)
    pyt_eager = time_eager(lambda: a.T @ b,
                           label="pyt_eager", repetitions=repetitions)
    tf_graph = time_compiled(_tf_graph_atb(), [a, b],
                             label="tf_graph", repetitions=repetitions)
    pyt_graph = time_compiled(_pyt_graph_atb(), [a, b],
                              label="pyt_graph", repetitions=repetitions)
    table.add_row(
        "AᵀB",
        MKL_C=ref.best,
        TF_eager=tf_eager.best,
        PyT_eager=pyt_eager.best,
        TF_graph=tf_graph.best,
        PyT_graph=pyt_graph.best,
    )

    # -- row 2: (AᵀB)ᵀ(AᵀB) ------------------------------------------------------
    def tf_eager_gram():
        return tfsim.transpose(tfsim.transpose(a) @ b) @ (tfsim.transpose(a) @ b)

    def pyt_eager_gram():
        return (a.T @ b).T @ (a.T @ b)

    tf_eager2 = time_eager(tf_eager_gram, label="tf_eager",
                           repetitions=repetitions)
    pyt_eager2 = time_eager(pyt_eager_gram, label="pyt_eager",
                            repetitions=repetitions)
    tf_graph2 = time_compiled(_tf_graph_gram(), [a, b],
                              label="tf_graph", repetitions=repetitions)
    pyt_graph2 = time_compiled(_pyt_graph_gram(), [a, b],
                               label="pyt_graph", repetitions=repetitions)
    table.add_row(
        "(AᵀB)ᵀ(AᵀB)",
        MKL_C=Cell(text="–"),
        TF_eager=tf_eager2.best,
        PyT_eager=pyt_eager2.best,
        TF_graph=tf_graph2.best,
        PyT_graph=pyt_graph2.best,
    )

    tf_fn, pyt_fn = _tf_graph_gram(), _pyt_graph_gram()
    tf_fn.get_concrete(a, b)
    pyt_fn.get_concrete(a, b)
    table.notes.append(
        "trace/compile overheads (excluded from timings, cf. paper footnote 4): "
        f"tfsim {tf_fn.last_trace_seconds:.1e}s, "
        f"pytsim {pyt_fn.last_trace_seconds:.1e}s"
    )
    table.notes.append(
        "expected shape: row 1 ≈ equal everywhere; row 2 eager ≈ 1.5× graph "
        "(3 GEMMs vs 2 after CSE)"
    )
    return table
