"""The :class:`Session` — one owner for plan cache, options and stats.

PR 1 left three uncoordinated graph-mode entry points (``tfsim.function``,
``pytsim.jit.script`` and the raw ``runtime`` calls) all funnelling into
one mutable process-wide plan cache.  A ``Session`` makes that ownership
explicit:

* it owns its *own* :class:`~repro.runtime.PlanCache` (capacity from
  :class:`~repro.api.options.Options`), so tenants/tests/experiments
  isolate by construction;
* it is the single compile/run surface — ``compile``/``run``/``run_batch``
  — over any registered backend;
* it records per-plan compile and execution timings next to the cache's
  hit/miss/eviction counters, exposed as one :meth:`stats` snapshot.

Sessions nest as context managers: inside ``with Session() as s:`` the
legacy decorators compile into ``s`` (they resolve the *ambient* session
per call).  With no session entered, a lazily created process-wide
default session — whose cache is the PR-1 global cache instance — keeps
old code behaving exactly as before.
"""

from __future__ import annotations

import contextvars
import dataclasses
import threading
import time
import weakref
from collections import OrderedDict
from collections.abc import Callable, Sequence

import numpy as np

from ..errors import ConfigError
from ..ir.tracing import trace
from ..ir.validate import validate_graph
from ..runtime import (
    BatchResult,
    PlanCache,
    PlanStore,
    ShardPool,
    ShardWorkerError,
    execute_batch,
)
from ..runtime import cache as _cache_module
from ..runtime.autotune import Autotuner, AutotuneConfig, AutotuneStats
from ..runtime.plan import Plan
from ..runtime.signature import graph_signature
from ..tensor.tensor import Tensor
from .compiled import Compiled, Concrete
from .options import Options
from .registry import FrameworkProfile, backend as resolve_backend

#: Live ShardPools cached per session: each pool owns worker processes
#: and shared-memory segments, so the cache is a small LRU, not a map
#: that grows with plan churn.
_MAX_SHARD_POOLS = 4


@dataclasses.dataclass
class PlanStats:
    """Compile/exec accounting of one plan within one session.

    A plan deduplicates structurally identical traces, so *several*
    functions/backends/pipelines can land on it — the tuples accumulate
    every contributor (rendered joined with ``+``), not just the first.
    """

    labels: tuple[str, ...]
    backends: tuple[str, ...]
    pipelines: tuple[str, ...]
    #: Number of traces that landed on this plan (≥ 2 means the session
    #: deduplicated structurally identical expressions).
    traces: int = 0
    #: Total trace+optimize+plan-acquire seconds across those traces.
    trace_seconds: float = 0.0
    #: Graph→Plan compile seconds (0.0 while the plan came from cache).
    plan_compile_seconds: float = 0.0
    executions: int = 0
    exec_seconds: float = 0.0
    #: Fused sites in the plan (elementwise chains + GEMM alpha folds);
    #: 0 when the session compiles with ``fusion=False``.
    fused_sites: int = 0

    @property
    def label(self) -> str:
        return "+".join(self.labels)

    @property
    def backend(self) -> str:
        return "+".join(self.backends)

    @property
    def pipeline(self) -> str:
        return "+".join(self.pipelines)


@dataclasses.dataclass(frozen=True)
class SessionStats:
    """Point-in-time snapshot returned by :meth:`Session.stats`."""

    hits: int
    misses: int
    evictions: int
    entries: int
    capacity: int
    plans: tuple[PlanStats, ...]
    #: The session's execution-mode knobs, echoed so ``laab cache-stats``
    #: renders them next to the counters they explain.
    fusion: bool = False
    arena: str = "per-call"
    donate_feeds: "bool | str" = False
    shards: int | None = None
    pin: bool = False
    #: Shard activity (satellite of the serving PR): live pools cached on
    #: the session, worker processes those pools own, and worker-waves
    #: dispatched over the session's lifetime (including pools since
    #: evicted or closed).
    shard_pools_open: int = 0
    shard_workers: int = 0
    shard_waves_served: int = 0
    #: Supervision health (robustness PR): hung workers reaped, workers
    #: respawned, waves replayed — across live and retired pools — plus
    #: the degraded-mode policy and how often it actually engaged.
    shard_hangs_detected: int = 0
    shard_respawns: int = 0
    shard_waves_replayed: int = 0
    shard_fallback: str = "error"
    shard_fallback_runs: int = 0
    #: Persistent plan store (PR 8): the directory when attached, plus
    #: this session's store counters.  ``store_hits`` are builds served
    #: by re-lowering a stored artifact — the in-memory ``misses``
    #: counter keeps meaning "cold compiles", so a fully warm start
    #: shows ``misses == 0``.
    plan_store: str | None = None
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0
    store_corrupt_evicted: int = 0
    store_bytes_mapped: int = 0
    store_seconds_saved: float = 0.0
    #: Online autotuning (PR 10): the session autotuner's counters —
    #: signatures tuned, candidates raced/rejected, promotions (live and
    #: restored from the store), tuning wall time and the last measured
    #: speedup.  ``None`` when the session doesn't tune.
    autotune: "AutotuneStats | None" = None

    @property
    def fused_sites(self) -> int:
        """Total fused sites across this session's plans."""
        return sum(p.fused_sites for p in self.plans)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def render(self) -> str:
        """Human-readable table (used by ``laab … --cache-stats``).

        ``trace(s)`` is trace+optimize+plan-acquire wall time (the
        paper's excluded decorator overhead); ``compile(s)`` is the
        Graph→Plan compile time actually paid by this session (0 for
        pure cache hits).
        """
        fusion = (
            f"on ({self.fused_sites} fused sites)" if self.fusion else "off"
        )
        arena = self.arena
        if self.donate_feeds:
            mode = "fallback" if self.donate_feeds == "fallback" else "strict"
            arena += f" | donated feeds ({mode})"
        if self.pin:
            arena += " | pinned"
        exec_line = f"execution: fusion {fusion} | arena {arena}"
        if self.shards is not None:
            exec_line += f" | {self.shards} shard processes"
        lines = [
            f"plan cache: {self.entries}/{self.capacity} plans | "
            f"{self.hits} hits / {self.misses} misses / "
            f"{self.evictions} evictions (hit rate {self.hit_rate:.1%})",
            exec_line,
        ]
        if (self.shards is not None or self.shard_pools_open
                or self.shard_waves_served):
            shard_line = (
                f"sharding: {self.shard_pools_open} pool(s) open | "
                f"{self.shard_workers} worker process(es) | "
                f"{self.shard_waves_served} wave(s) served"
            )
            if (self.shard_hangs_detected or self.shard_respawns
                    or self.shard_waves_replayed):
                shard_line += (
                    f" | {self.shard_hangs_detected} hang(s) / "
                    f"{self.shard_respawns} respawn(s) / "
                    f"{self.shard_waves_replayed} wave(s) replayed"
                )
            lines.append(shard_line)
            if self.shard_fallback_runs:
                lines.append(
                    f"degraded: {self.shard_fallback_runs} batch(es) "
                    "completed inline after a shard-pool failure"
                )
        if self.plan_store is not None:
            lines.append(
                f"plan store: {self.store_hits} hits / "
                f"{self.store_misses} misses / "
                f"{self.store_writes} writes / "
                f"{self.store_corrupt_evicted} corrupt evicted | "
                f"{self.store_bytes_mapped / 1024:.1f} KiB mapped | "
                f"~{self.store_seconds_saved:.4f}s saved "
                f"({self.plan_store})"
            )
        if self.autotune is not None:
            lines.append(self.autotune.render())
        if self.plans:
            lw = max(12, max(len(p.label) for p in self.plans))
            bw = max(7, max(len(p.backend) for p in self.plans))
            lines.append(
                f"  {'plan'.ljust(lw)}  {'backend'.ljust(bw)}  pipeline  "
                f"traces  trace(s)  compile(s)  execs  exec(s)"
            )
            for p in self.plans:
                lines.append(
                    f"  {p.label.ljust(lw)}  {p.backend.ljust(bw)}  "
                    f"{p.pipeline:<8}  {p.traces:>6}  "
                    f"{p.trace_seconds:>8.4f}  "
                    f"{p.plan_compile_seconds:>10.4f}  {p.executions:>5}  "
                    f"{p.exec_seconds:>7.4f}"
                )
        return "\n".join(lines)


class Session:
    """Scoped compile/run surface over the compiled-execution runtime."""

    def __init__(
        self,
        options: Options | None = None,
        *,
        plan_cache: PlanCache | None = None,
        **overrides: object,
    ) -> None:
        base = options if options is not None else Options()
        self.options = base.replace(**overrides) if overrides else base
        self.options.validate()
        if plan_cache is not None:
            # Adopting an existing cache (the process-wide default session
            # adopts the PR-1 global instance) — capacity is the cache's,
            # so an explicit conflicting capacity is an error, not a
            # silently dropped knob.
            if "cache_capacity" in overrides or (
                options is not None
                and options.cache_capacity != plan_cache.maxsize
            ):
                raise ConfigError(
                    f"cache_capacity={self.options.cache_capacity} conflicts "
                    f"with the adopted plan_cache (maxsize="
                    f"{plan_cache.maxsize}); pass one or the other"
                )
            self.plan_cache = plan_cache
            self.options = self.options.replace(cache_capacity=plan_cache.maxsize)
        else:
            self.plan_cache = PlanCache(maxsize=self.options.cache_capacity)
        #: Persistent cross-run plan store (``Options(plan_store=DIR)``);
        #: ``None`` when the session is purely in-memory.  Shared-dir
        #: semantics are the store's own (atomic writes); the *instance*
        #: — and its stats — is per-session, like the plan cache.
        self.plan_store: PlanStore | None = (
            PlanStore(self.options.plan_store)
            if self.options.plan_store is not None
            else None
        )
        #: Online autotuner (``Options(autotune=...)``); ``None`` when
        #: off.  Per-session like the plan cache — serve tenants tuning
        #: through their own sessions get independent budgets.
        autotune_config = AutotuneConfig.normalize(self.options.autotune)
        self._autotuner: Autotuner | None = (
            Autotuner(autotune_config) if autotune_config is not None else None
        )
        # Weak keys: accounting must not pin plans the LRU has evicted
        # and nothing else references — a stats row lives as long as its
        # plan does (in the cache or in a live Concrete).
        self._plan_stats: "weakref.WeakKeyDictionary[Plan, PlanStats]" = (
            weakref.WeakKeyDictionary()
        )
        #: (fn, backend name, pipeline) → Compiled, so ``session.run`` on
        #: a plain callable is trace-once/execute-many, not retrace-per-
        #: call.  LRU-bounded like the plan cache: callers passing a fresh
        #: lambda per call must not grow the session without bound.
        self._run_memo: "OrderedDict[tuple, Compiled]" = OrderedDict()
        #: (plan id, shards, dtype) → ShardPool, reused across
        #: ``run_sharded`` calls so worker startup is paid once per plan.
        #: LRU-bounded like ``_run_memo`` — pools own worker processes
        #: and /dev/shm segments, so plan churn (cache eviction, fresh
        #: lambdas) must evict-and-close old pools, not accrete them.
        #: Closed when the session exits its context (or on GC via each
        #: pool's own finalizer).
        self._shard_pools: "OrderedDict[tuple, ShardPool]" = OrderedDict()
        #: name → pinned Tensor handed out by :meth:`pin` (kept alive for
        #: the session's lifetime — that is the pinning contract).
        self._pinned: dict[str, Tensor] = {}
        #: Worker-waves served by pools since evicted or closed, so the
        #: stats line survives pool churn.
        self._shard_waves_retired = 0
        #: [hangs_detected, respawns, waves_replayed] of retired pools —
        #: the health counters survive pool churn the same way.
        self._shard_health_retired = [0, 0, 0]
        #: Batches completed in-process after a pool broke mid-run
        #: (``Options(shard_fallback="inline")``).
        self._shard_fallback_runs = 0
        # Chaos-only knob: activate the session's fault plan process-wide
        # before any worker (or store load) can hit an injection site.
        if self.options.faults is not None:
            from .. import faults as _faults

            _faults.install(self.options.faults)
        #: Set by :meth:`close` (context exit closes the session too):
        #: shard pools are gone and sharded execution must fail loudly
        #: at entry instead of tripping on pool internals.
        self._closed = False
        self._lock = threading.Lock()

    # -- the one compile surface -----------------------------------------------

    def compile(
        self,
        fn: Callable,
        *,
        backend: str | FrameworkProfile | None = None,
        pipeline: str | None = None,
    ) -> Compiled:
        """Wrap ``fn`` for graph-mode execution in this session.

        ``backend`` is a registered name (``"tfsim"``/``"pytsim"``) or a
        :class:`FrameworkProfile`; defaults to ``options.backend``.
        ``pipeline`` overrides ``options.pipeline`` for this function.
        """
        if isinstance(fn, Compiled):
            raise TypeError(
                f"{fn!r} is already compiled; pass the plain Python function"
            )
        profile = backend if isinstance(backend, FrameworkProfile) else \
            resolve_backend(backend or self.options.backend)
        if pipeline is not None:
            # Fail fast on typos instead of at first call.
            Options(pipeline=pipeline).validate()
        return Compiled(fn, profile, session=self, pipeline=pipeline)

    def run(
        self,
        fn: Callable | Compiled,
        *args: Tensor,
        backend: str | FrameworkProfile | None = None,
        pipeline: str | None = None,
    ):
        """Compile-if-needed and execute ``fn(*args)`` through this session.

        ``backend``/``pipeline`` only apply when ``fn`` still needs
        compiling; passing them with an already-``Compiled`` function is
        rejected rather than silently ignored.
        """
        if isinstance(fn, Compiled):
            if backend is not None or pipeline is not None:
                raise ValueError(
                    f"{fn!r} is already compiled; backend=/pipeline= have "
                    "no effect here — pass them to session.compile instead"
                )
            return fn._call_in(fn._session_for(self), args)
        profile = backend if isinstance(backend, FrameworkProfile) else \
            resolve_backend(backend or self.options.backend)
        # Key by the profile object, not its name: run() accepts ad-hoc
        # unregistered profiles, and two distinct profiles sharing a name
        # must not reuse each other's Compiled.
        memo_key = (fn, profile, pipeline)
        with self._lock:
            compiled = self._run_memo.get(memo_key)
            if compiled is not None:
                self._run_memo.move_to_end(memo_key)
        if compiled is None:
            compiled = self.compile(fn, backend=profile, pipeline=pipeline)
            with self._lock:
                compiled = self._run_memo.setdefault(memo_key, compiled)
                while len(self._run_memo) > self.options.cache_capacity:
                    self._run_memo.popitem(last=False)
        return compiled._call_in(self, args)

    def run_batch(
        self,
        fn: Compiled,
        feed_sets: Sequence[Sequence[Tensor]],
        *,
        workers: int | None = None,
        record: bool = False,
    ) -> BatchResult:
        """One compiled plan over many feed sets (wraps ``execute_batch``).

        The first feed set fixes the trace signature; every set must bind
        to the same plan (shape-checked by the plan itself).  ``workers``
        defaults to ``options.batch_workers``.  With ``Options(shards=N)``
        un-recorded batches route to :meth:`run_sharded` instead — the
        multi-process path — unless the call names an explicit
        ``workers=`` (a per-call ask for the in-process thread pool
        always wins over the session default); ``record=True`` also
        keeps the in-process executors, which are the only ones that
        can account.
        """
        if not isinstance(fn, Compiled):
            raise TypeError(
                f"run_batch needs a Compiled (from session.compile), got "
                f"{type(fn).__name__}"
            )
        if self.options.shards is not None and not record and workers is None:
            return self.run_sharded(fn, feed_sets)
        feed_sets = [list(feeds) for feeds in feed_sets]
        if not feed_sets:
            return BatchResult(outputs=[], reports=[])
        session = fn._session_for(self)
        concrete = fn._concrete_in(session, feed_sets[0])
        if workers is None:
            workers = self.options.batch_workers
        start = time.perf_counter()
        result = execute_batch(
            concrete.plan,
            feed_sets,
            workers=workers,
            record=record,
            arena=session.options.arena,
            donate_feeds=session._donate_mode(),
        )
        self._record_exec(
            concrete.plan, time.perf_counter() - start, count=len(feed_sets)
        )
        self._maybe_autotune(
            concrete, [t.data for t in feed_sets[0]], count=len(feed_sets)
        )
        return result

    # -- sharded + pinned serving ------------------------------------------------

    def pin(
        self, name: str, shape: tuple[int, int], dtype: object = None
    ) -> Tensor:
        """A Tensor whose buffer is session-pinned input storage.

        The returned tensor owns a Fortran-ordered zeroed buffer that
        lives for the session's lifetime; rewrite its ``.data`` in place
        between calls and pass the *same tensor* each time.  Under
        ``Options(pin=True)`` the runtime recognizes the repeated
        identity, binds the buffer into the plan's arena slot once, and
        steady-state calls skip feed binding and donation layout checks
        entirely (the ``PinnedBinding`` fast path).  Re-pinning an
        existing ``name`` returns the existing tensor when shape/dtype
        agree and raises otherwise — two owners of one pin slot is
        always a bug.

        Pins are Fortran-ordered (the layout of every BLAS-fed input
        slot).  The rare plan whose input slot is *C*-ordered — an
        input consumed only by the tridiagonal row-scaling kernel —
        cannot alias an F pin; such calls stay correct through the
        fallback-donation path but keep paying a per-call copy rather
        than engaging the pinned fast path.
        """
        if dtype is None:
            from ..config import config

            dtype = config.default_dtype
        dtype = np.dtype(dtype)
        with self._lock:
            existing = self._pinned.get(name)
            if existing is not None:
                if existing.shape != tuple(shape) or existing.dtype != dtype:
                    raise ConfigError(
                        f"pin {name!r} already exists with shape "
                        f"{existing.shape} {existing.dtype}; asked for "
                        f"{tuple(shape)} {dtype}"
                    )
                return existing
            buf = np.zeros(tuple(shape), dtype=dtype, order="F")
            tensor = Tensor(buf, dtype=dtype)
            assert tensor.data is buf  # pinning relies on zero-copy wrap
            self._pinned[name] = tensor
            return tensor

    def run_sharded(
        self,
        fn: Compiled,
        feed_sets: Sequence[Sequence[Tensor]],
        *,
        shards: int | None = None,
    ) -> BatchResult:
        """``run_batch`` across worker *processes* — the GIL-free path.

        The plan behind ``fn`` is shipped to ``shards`` workers (default
        ``options.shards``, else :func:`repro.runtime.default_shards`)
        through a session-cached :class:`~repro.runtime.ShardPool`;
        feeds stream through shared-memory rings, so workers execute
        copy-free regardless of the session's donation settings.
        Reports are empty (serving path): use ``run_batch`` for
        recorded, in-process batches.
        """
        if not isinstance(fn, Compiled):
            raise TypeError(
                f"run_sharded needs a Compiled (from session.compile), got "
                f"{type(fn).__name__}"
            )
        if self._closed:
            raise RuntimeError(
                "session closed: its shard pools were torn down on close/"
                "context exit — run sharded batches inside the session's "
                "'with' block, or build a new Session"
            )
        feed_sets = [list(feeds) for feeds in feed_sets]
        if not feed_sets:
            return BatchResult(outputs=[], reports=[])
        session = fn._session_for(self)
        concrete = fn._concrete_in(session, feed_sets[0])
        if shards is None:
            shards = self.options.shards
        dtype = feed_sets[0][0].dtype
        pool = self._shard_pool(concrete.plan, shards, dtype)
        start = time.perf_counter()
        try:
            result = pool.run(
                [[t.data for t in feeds] for feeds in feed_sets]
            )
        except ShardWorkerError:
            if self.options.shard_fallback != "inline":
                raise
            # Degraded mode: the pool broke mid-run and its retry budget
            # is spent — complete the batch on the in-process
            # fused-arena path so the caller still gets bit-correct
            # results (a later run_sharded builds a fresh pool).
            with self._lock:
                self._shard_fallback_runs += 1
            result = execute_batch(
                concrete.plan,
                feed_sets,
                workers=self.options.batch_workers,
                record=False,
                arena="preallocated",
                donate_feeds=False,
            )
        self._record_exec(
            concrete.plan, time.perf_counter() - start, count=len(feed_sets)
        )
        self._maybe_autotune(
            concrete, [t.data for t in feed_sets[0]], count=len(feed_sets)
        )
        return result

    def _shard_pool(
        self, plan: Plan, shards: int | None, dtype: np.dtype
    ) -> ShardPool:
        key = (id(plan), shards, str(dtype))
        evicted: list[ShardPool] = []
        with self._lock:
            pool = self._shard_pools.get(key)
            if pool is not None:
                if not pool._closed and not pool._broken:
                    self._shard_pools.move_to_end(key)
                    return pool
                # A broken pool still owns its surviving workers and
                # shared memory: reclaim them now, not at some GC.
                evicted.append(self._shard_pools.pop(key))
            pool = ShardPool(
                plan, shards=shards, dtype=dtype, store=self.plan_store,
                respawn=self.options.shard_respawn,
                wave_deadline=self.options.shard_wave_deadline,
            )
            self._shard_pools[key] = pool
            while len(self._shard_pools) > _MAX_SHARD_POOLS:
                evicted.append(self._shard_pools.popitem(last=False)[1])
            self._note_retired(evicted)
        for old in evicted:  # close outside the lock — joins processes
            old.close()
        return pool

    def close_shard_pools(self) -> None:
        """Stop all cached shard workers and unlink their shared memory.

        Idempotent — runs automatically when the session exits its
        ``with`` block, and again from :meth:`close`; pools built
        outside any block are reclaimed by their own GC finalizers.
        """
        with self._lock:
            pools = list(self._shard_pools.values())
            self._shard_pools.clear()
            self._note_retired(pools)
        for pool in pools:
            pool.close()

    def _note_retired(self, pools) -> None:
        """Fold evicted/closed pools' counters into the retired totals
        (caller holds ``self._lock``)."""
        for p in pools:
            self._shard_waves_retired += p.waves_served
            self._shard_health_retired[0] += p.hangs_detected
            self._shard_health_retired[1] += p.respawns
            self._shard_health_retired[2] += p.waves_replayed

    def close(self) -> None:
        """Close the session: tear down shard pools and mark it closed.

        Idempotent.  In-process execution (``run``/``run_batch`` without
        shards) keeps working — plans and arenas hold no OS resources —
        but :meth:`run_sharded` raises a clear ``RuntimeError`` instead
        of rebuilding worker processes nobody would tear down.
        """
        self._closed = True
        if self._autotuner is not None:
            self._autotuner.close()
        self.close_shard_pools()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- stats -------------------------------------------------------------------

    def stats(self) -> SessionStats:
        """Snapshot of cache counters and per-plan compile/exec timings."""
        cache_stats = self.plan_cache.stats
        with self._lock:
            plans = tuple(
                dataclasses.replace(p) for p in self._plan_stats.values()
            )
            live = [
                p for p in self._shard_pools.values()
                if not p._closed and not p._broken
            ]
            shard_pools_open = len(live)
            shard_workers = sum(p.shards for p in live)
            pools = list(self._shard_pools.values())
            shard_waves = self._shard_waves_retired + sum(
                p.waves_served for p in pools
            )
            retired = self._shard_health_retired
            shard_hangs = retired[0] + sum(p.hangs_detected for p in pools)
            shard_respawns = retired[1] + sum(p.respawns for p in pools)
            shard_replays = retired[2] + sum(p.waves_replayed for p in pools)
            fallback_runs = self._shard_fallback_runs
        return SessionStats(
            hits=cache_stats.hits,
            misses=cache_stats.misses,
            evictions=cache_stats.evictions,
            entries=len(self.plan_cache),
            capacity=self.plan_cache.maxsize,
            plans=plans,
            fusion=self.options.fusion,
            arena=self.options.arena,
            # Report the mode executions actually run with (strict may
            # soften to fallback under validation="full").
            donate_feeds=self._donate_mode(),
            shards=self.options.shards,
            pin=self.options.pin,
            shard_pools_open=shard_pools_open,
            shard_workers=shard_workers,
            shard_waves_served=shard_waves,
            shard_hangs_detected=shard_hangs,
            shard_respawns=shard_respawns,
            shard_waves_replayed=shard_replays,
            shard_fallback=self.options.shard_fallback,
            shard_fallback_runs=fallback_runs,
            plan_store=(
                self.plan_store.root if self.plan_store is not None else None
            ),
            store_hits=(
                self.plan_store.stats.hits if self.plan_store else 0
            ),
            store_misses=(
                self.plan_store.stats.misses if self.plan_store else 0
            ),
            store_writes=(
                self.plan_store.stats.writes if self.plan_store else 0
            ),
            store_corrupt_evicted=(
                self.plan_store.stats.corrupt_evicted if self.plan_store else 0
            ),
            store_bytes_mapped=(
                self.plan_store.stats.bytes_mapped if self.plan_store else 0
            ),
            store_seconds_saved=(
                self.plan_store.stats.seconds_saved if self.plan_store else 0.0
            ),
            autotune=(
                self._autotuner.stats()
                if self._autotuner is not None
                else None
            ),
        )

    # -- internals ---------------------------------------------------------------

    def _donate_mode(self) -> "bool | str":
        """The feed-donation mode executions actually run with.

        ``validation="full"`` softens strict donation to ``"fallback"``
        (copy feeds the layout check would reject) — the documented
        escape hatch for callers who want the checks, not the crashes.
        """
        donate = self.options.donate_feeds
        if donate is True and self.options.validation == "full":
            return "fallback"
        return donate

    def _build(
        self,
        fn: Callable,
        profile: FrameworkProfile,
        pipeline_choice: str,
        args: Sequence[Tensor],
        *,
        label: str,
    ) -> Concrete:
        """Trace → (validate) → optimize → plan-compile, with accounting.

        This is the single code path behind ``session.compile(...)`` calls
        and the legacy decorators alike.
        """
        validation = self.options.validation
        fold = self.options.fold_constants
        fusion = self.options.fusion
        store = self.plan_store
        start = time.perf_counter()
        graph = trace(fn, list(args))
        if validation in ("trace", "full"):
            validate_graph(graph)
        # Warm start: the store maps this trace's signature (plus
        # pipeline identity) straight to the stored *optimized* graph —
        # a hit skips every optimization pass, and the cache lookup
        # below re-lowers instead of cold-compiling (via_store keeps
        # the miss counter honest).  Misses fall through to the normal
        # build and write the artifact back.
        optimized = None
        trace_key = None
        alias_record = None
        if store is not None:
            trace_key = store.trace_key(
                graph, backend=profile.name, pipeline=pipeline_choice,
                fold_constants=fold, fusion=fusion,
            )
            optimized, alias_record = store.load_graph_with_record(trace_key)
        warm_start = optimized is not None
        # A promoted autotune winner re-aliased this trace: the stored
        # graph is the *winner's* (possibly a rewrite derivation), and
        # the record carries the knobs it raced with — a fusion-flip
        # winner must recompile with its own fusion setting, not the
        # session's.  Restored winners never re-tune.
        restored_promotion = (
            warm_start
            and isinstance(alias_record, dict)
            and "winner" in alias_record
        )
        build_fold, build_fusion = fold, fusion
        if restored_promotion:
            build_fold = bool(alias_record.get("fold_constants", fold))
            build_fusion = bool(alias_record.get("fusion", fusion))
        if warm_start:
            pipeline_log = (
                f"plan store warm start ({pipeline_choice} passes skipped)"
            )
            if restored_promotion:
                pipeline_log += " | autotuned winner restored"
        else:
            pipeline = profile.pipeline(pipeline_choice)
            optimized = pipeline.run(graph)
            pipeline_log = pipeline.describe()
        if validation == "full":
            validate_graph(optimized)
        plan, compiled_here = self.plan_cache.get_with_info(
            optimized,
            fold_constants=build_fold,
            fusion=build_fusion,
            via_store=warm_start,
        )
        elapsed = time.perf_counter() - start
        if store is not None and not warm_start:
            plan_key = store.put_plan(plan, cold_seconds=elapsed)
            if plan_key is not None:
                store.put_alias(trace_key, plan_key)
        with self._lock:
            rec = self._plan_stats.get(plan)
            if rec is None:
                rec = self._plan_stats[plan] = PlanStats(
                    labels=(label,),
                    backends=(profile.name,),
                    pipelines=(pipeline_choice,),
                )
            else:
                # Deduped trace from another function/backend: attribute
                # it, don't let the first compiler own the row.
                if label not in rec.labels:
                    rec.labels += (label,)
                if profile.name not in rec.backends:
                    rec.backends += (profile.name,)
                if pipeline_choice not in rec.pipelines:
                    rec.pipelines += (pipeline_choice,)
            rec.traces += 1
            rec.trace_seconds += elapsed
            if plan.fusion_stats is not None:
                rec.fused_sites = plan.fusion_stats.sites
            if compiled_here:
                rec.plan_compile_seconds += plan.compile_seconds
        concrete = Concrete(
            graph=graph,
            optimized=optimized,
            plan=plan,
            trace_seconds=elapsed,
            pipeline_log=pipeline_log,
            # One arena per concrete specialization: executions of this
            # function in this session reuse its preallocated buffers.
            arena=plan.new_arena()
            if self.options.arena == "preallocated"
            else None,
            donate=self._donate_mode(),
            pin=self.options.pin,
            cache_key=(
                (graph_signature(optimized), build_fold, build_fusion)
                if self._autotuner is not None
                else None
            ),
            trace_key=trace_key,
        )
        if restored_promotion:
            # The tuned plan is already in hand — no hotness tracking,
            # no race, zero tuning seconds this process.
            concrete.autotune_done = True
            if self._autotuner is not None:
                self._autotuner.mark_restored(concrete.cache_key)
        return concrete

    def _record_exec(self, plan: Plan, seconds: float, *, count: int = 1) -> None:
        with self._lock:
            rec = self._plan_stats.get(plan)
            if rec is None:  # plan executed without a recorded build
                rec = self._plan_stats[plan] = PlanStats(
                    labels=("<unbuilt>",), backends=("?",), pipelines=("?",)
                )
            rec.executions += count
            rec.exec_seconds += seconds

    # -- autotuning ----------------------------------------------------------------

    def _maybe_autotune(
        self, concrete: Concrete, datas: Sequence[np.ndarray], *,
        count: int = 1,
    ) -> None:
        """Hotness bookkeeping + race trigger — called after every
        execution through ``concrete``.

        Sub-microsecond when the session doesn't tune or the concrete is
        already tuned; otherwise folds ``count`` executions into the
        plan-cache stats row and, on crossing the threshold, claims the
        key (exactly one racer per key, across threads) and races on
        *these* feeds — the real traffic that made the signature hot.
        """
        tuner = self._autotuner
        if tuner is None or concrete.autotune_done \
                or concrete.cache_key is None:
            return
        hotness = self.plan_cache.note_execution(
            concrete.cache_key, count=count
        )
        if hotness < tuner.config.hot_threshold:
            return
        if not tuner.claim(concrete.cache_key):
            concrete.autotune_done = True  # raced (or racing) elsewhere
            return
        concrete.autotune_done = True
        if tuner.config.mode == "worker":
            # The race outlives this call — snapshot the feeds so pinned
            # buffers rewritten in place can't skew the measurement.
            feeds = [np.array(d) for d in datas]
        else:
            feeds = list(datas)
        tuner.tune(self, concrete, feeds)

    def _apply_promotion(
        self, concrete: Concrete, winner, record: dict
    ) -> None:
        """Install a race winner: plan cache, live concrete, plan store.

        Called by the autotuner (possibly from its worker-driving
        thread).  The cache swap makes every *future* build of this
        signature resolve to the winner; the concrete swap (under the
        arena lock, paired with a fresh arena and cleared pinned
        binding) moves the live serving path over atomically; the store
        re-alias persists the winner plus its derivation record so a
        restarted process warm-starts straight onto it.
        """
        winner_plan = winner.plan
        if winner_plan is None:
            return
        canonical_plan = concrete.plan
        if concrete.cache_key is not None:
            self.plan_cache.promote(concrete.cache_key, winner_plan)
        with concrete.arena_lock:
            concrete.plan = winner_plan
            if concrete.arena is not None:
                concrete.arena = winner_plan.new_arena()
            concrete.pinned_key = None
            concrete.pinned_binding = None
        with self._lock:
            old = self._plan_stats.get(canonical_plan)
            if winner_plan not in self._plan_stats:
                self._plan_stats[winner_plan] = PlanStats(
                    labels=old.labels if old else ("<autotuned>",),
                    backends=old.backends if old else ("?",),
                    pipelines=tuple(
                        dict.fromkeys(
                            (old.pipelines if old else ())
                            + ("autotuned",)
                        )
                    ),
                    plan_compile_seconds=winner_plan.compile_seconds,
                )
        store = self.plan_store
        if store is not None and concrete.trace_key is not None:
            plan_key = store.put_plan(winner_plan)
            if plan_key is not None:
                store.put_alias(
                    concrete.trace_key, plan_key,
                    record=record, overwrite=True,
                )

    # -- context management -------------------------------------------------------

    def __enter__(self) -> "Session":
        if self._closed:
            raise RuntimeError(
                "session closed: a Session is single-lifetime once closed "
                "(context exit closes it) — build a new Session"
            )
        _ambient_stack.set(_ambient_stack.get() + (self,))
        return self

    def __exit__(self, *exc: object) -> None:
        # Remove the most recent occurrence of self: tolerant of
        # interleaved (non-LIFO) exits from generators/fixtures.
        stack = _ambient_stack.get()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                _ambient_stack.set(stack[:i] + stack[i + 1:])
                break
        # Shard workers hold OS resources (processes, /dev/shm segments):
        # reclaim them deterministically at block exit rather than at GC.
        # Closing also marks the session, so a later run_sharded fails
        # with a clear error instead of silently respawning workers.
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.plan_cache.stats
        return (
            f"<Session backend={self.options.backend!r} "
            f"pipeline={self.options.pipeline!r} "
            f"cache={len(self.plan_cache)}/{self.plan_cache.maxsize} "
            f"({s.hits}h/{s.misses}m)>"
        )


# -- ambient session ------------------------------------------------------------

#: Context-local (per-thread / per-asyncio-task) stack of entered
#: sessions.  A ``with Session():`` in one thread must not redirect other
#: threads' ambient compiles — that would cross exactly the isolation
#: boundary sessions exist to draw.  New threads start with an empty
#: stack and fall back to the process-wide default session.
_ambient_stack: contextvars.ContextVar[tuple["Session", ...]] = (
    contextvars.ContextVar("repro_api_ambient_sessions", default=())
)
_default_session: Session | None = None
_default_session_lock = threading.Lock()


def default_session() -> Session:
    """The lazily created process-wide session.

    Its plan cache *is* the PR-1 global cache instance, so legacy code
    (and code that never opens a session) keeps the exact pre-Session
    behaviour, including cross-framework plan sharing.
    """
    global _default_session
    # Lock-free fast path: this sits on the call path of every ambient
    # decorated function, and after first use the reference never changes.
    session = _default_session
    if session is not None:
        return session
    with _default_session_lock:
        if _default_session is None:
            _default_session = Session(
                plan_cache=_cache_module._default_plan_cache()
            )
        return _default_session


def current_session() -> Session:
    """The innermost session entered *in this context* (thread/task), or
    the process-wide default."""
    stack = _ambient_stack.get()
    if stack:
        return stack[-1]
    return default_session()
