"""Reproducible random operand generators for experiments and tests.

Every generator takes an explicit ``seed`` (defaulting to the configured
one) so that a benchmark row can be regenerated bit-for-bit.  Entries are
drawn uniformly from [-1, 1) scaled by 1/sqrt(n), keeping products of long
chains at O(1) magnitude — float32 experiments at n = 3000 overflow
otherwise.
"""

from __future__ import annotations

import numpy as np

from ..config import config
from .dtypes import normalize_dtype
from .properties import Property
from .tensor import Tensor


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(config.seed if seed is None else seed)


def _uniform(rng: np.random.Generator, m: int, n: int, dtype: np.dtype) -> np.ndarray:
    scale = 1.0 / np.sqrt(max(m, n))
    return ((rng.random((m, n)) * 2.0 - 1.0) * scale).astype(dtype)


def random_general(
    m: int, n: int | None = None, *, dtype: object | None = None, seed: int | None = None
) -> Tensor:
    """A dense m×n (or m×m) tensor with no structure."""
    n = m if n is None else n
    return Tensor(_uniform(_rng(seed), m, n, normalize_dtype(dtype)))


def random_vector(
    n: int, *, row: bool = False, dtype: object | None = None, seed: int | None = None
) -> Tensor:
    """A column (n×1) or row (1×n) vector."""
    shape = (1, n) if row else (n, 1)
    return Tensor(_uniform(_rng(seed), *shape, normalize_dtype(dtype)))


def random_lower_triangular(
    n: int, *, dtype: object | None = None, seed: int | None = None
) -> Tensor:
    """A lower-triangular n×n tensor, annotated LOWER_TRIANGULAR."""
    a = np.tril(_uniform(_rng(seed), n, n, normalize_dtype(dtype)))
    return Tensor(a, {Property.LOWER_TRIANGULAR})


def random_upper_triangular(
    n: int, *, dtype: object | None = None, seed: int | None = None
) -> Tensor:
    """An upper-triangular n×n tensor, annotated UPPER_TRIANGULAR."""
    a = np.triu(_uniform(_rng(seed), n, n, normalize_dtype(dtype)))
    return Tensor(a, {Property.UPPER_TRIANGULAR})


def random_symmetric(
    n: int, *, dtype: object | None = None, seed: int | None = None
) -> Tensor:
    """A symmetric n×n tensor, annotated SYMMETRIC."""
    a = _uniform(_rng(seed), n, n, normalize_dtype(dtype))
    return Tensor((a + a.T) * a.dtype.type(0.5), {Property.SYMMETRIC})


def random_spd(
    n: int, *, dtype: object | None = None, seed: int | None = None
) -> Tensor:
    """A symmetric positive definite n×n tensor, annotated SPD.

    Built as ``AAᵀ + n·I`` scaled back to O(1), guaranteeing definiteness
    well away from float32 round-off.
    """
    d = normalize_dtype(dtype)
    a = _uniform(_rng(seed), n, n, d).astype(np.float64)
    spd = a @ a.T + np.eye(n)
    spd /= np.linalg.norm(spd, ord=2)
    spd += np.eye(n) * 0.1
    return Tensor(spd.astype(d), {Property.SPD})


def random_orthogonal(
    n: int, *, dtype: object | None = None, seed: int | None = None
) -> Tensor:
    """An orthogonal n×n tensor (QR of a Gaussian), annotated ORTHOGONAL."""
    rng = _rng(seed)
    q, r = np.linalg.qr(rng.standard_normal((n, n)))
    # Fix the sign convention so Q is Haar-distributed (and reproducible).
    q = q * np.sign(np.diagonal(r))
    return Tensor(q.astype(normalize_dtype(dtype)), {Property.ORTHOGONAL})


def random_tridiagonal(
    n: int, *, dtype: object | None = None, seed: int | None = None
) -> Tensor:
    """A tridiagonal n×n tensor, annotated TRIDIAGONAL."""
    rng = _rng(seed)
    d = normalize_dtype(dtype)
    from ..kernels.special import tridiag_from_bands

    t = tridiag_from_bands(
        (rng.random(n - 1) * 2 - 1).astype(d),
        (rng.random(n) * 2 - 1).astype(d),
        (rng.random(n - 1) * 2 - 1).astype(d),
    )
    return Tensor(t, {Property.TRIDIAGONAL})


def random_diagonal(
    n: int, *, dtype: object | None = None, seed: int | None = None
) -> Tensor:
    """A diagonal n×n tensor, annotated DIAGONAL."""
    rng = _rng(seed)
    d = normalize_dtype(dtype)
    return Tensor(np.diag((rng.random(n) * 2 - 1).astype(d)), {Property.DIAGONAL})
