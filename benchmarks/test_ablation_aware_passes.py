"""Ablation — default vs linear-algebra-aware pipeline (extension).

Quantifies what the paper's recommended optimizations would buy: each
negative-finding expression runs through the same framework with the
default pipeline and with the aware pipeline (chain reordering + property
dispatch + distributivity + partial access).
"""

import pytest

from repro.frameworks import tfsim


def _pair(builder, args):
    default_fn = tfsim.function(builder)
    aware_fn = tfsim.function(builder, aware=True)
    default_fn.get_concrete(*args)
    aware_fn.get_concrete(*args)
    return default_fn, aware_fn


@pytest.fixture(scope="module")
def cases(w):
    return {
        "chain": (
            lambda h, x: tfsim.transpose(h) @ h @ x,
            [w.general(0), w.vector(0)],
        ),
        "triangular": (lambda l, b: l @ b, [w.lower_triangular(), w.general(1)]),
        "gram": (lambda a: a @ tfsim.transpose(a), [w.general(0)]),
        "diagonal": (lambda d, b: d @ b, [w.diagonal(), w.general(1)]),
        "eq10": (
            lambda a, h, x: (a - tfsim.transpose(h) @ h) @ x,
            [w.general(0), w.general(3), w.vector(0)],
        ),
        "partial": (lambda a, b: (a @ b)[2, 2], [w.general(0), w.general(1)]),
        "orthogonal": (
            lambda q, a: tfsim.transpose(q) @ q @ a,
            [w.orthogonal(), w.general(1)],
        ),
    }


def _bench_case(benchmark, cases, name, aware):
    builder, args = cases[name]
    default_fn, aware_fn = _pair(builder, args)
    fn = aware_fn if aware else default_fn
    benchmark(lambda: fn(*args))


for _name in ("chain", "triangular", "gram", "diagonal", "eq10", "partial",
              "orthogonal"):

    def _make(name):
        @pytest.mark.benchmark(group=f"ablation-{name}")
        def bench_default(benchmark, cases):
            _bench_case(benchmark, cases, name, aware=False)

        @pytest.mark.benchmark(group=f"ablation-{name}")
        def bench_aware(benchmark, cases):
            _bench_case(benchmark, cases, name, aware=True)

        return bench_default, bench_aware

    _d, _a = _make(_name)
    globals()[f"test_{_name}_default_pipeline"] = _d
    globals()[f"test_{_name}_aware_pipeline"] = _a

del _name, _d, _a
