"""Multi-process sharded execution: ShardPool, graph serialization, and
plan pickling-by-reconstruction.

Contracts under test:

* :mod:`repro.runtime.serialize` round-trips a graph structurally —
  same :func:`graph_signature`, same execution results — including
  const payloads, property annotations, loop bodies and detached
  inputs; a corrupted payload fails loudly.
* ``pickle.dumps(plan)`` reconstructs an equivalent plan (recompiled
  from the graph payload) — the mechanism shard workers rely on.
* :class:`~repro.runtime.ShardPool` produces bit-identical outputs to
  in-process execution across waves and worker counts, with **zero**
  worker-side staged bytes in steady state.
* Failure paths: a mid-batch worker exception surfaces as
  :class:`ShardWorkerError` while the pool stays usable; a *dead*
  worker either breaks the pool (default) or is respawned
  (``respawn=True``); shared-memory segments are always unlinked —
  close, GC, and broken-pool paths alike (so ``pytest -x`` reruns never
  trip over leftovers).
"""

from __future__ import annotations

import gc
import multiprocessing
import pickle
import signal

import numpy as np
import pytest

from repro import api, faults
from repro.errors import ConfigError, GraphError
from repro.frameworks import tfsim
from repro.ir import trace
from repro.passes import default_pipeline
from repro.runtime import (
    ShardPool,
    ShardWorkerError,
    compile_plan,
    execute_batch,
    graph_from_payload,
    graph_to_payload,
    graph_signature,
)
from repro.tensor import Property, random_general, random_spd, random_vector

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture
def fault_plan():
    """Install a fault plan for one test; always deactivated afterwards."""
    yield faults.install
    faults.clear()


def _workload(loops: int = 4):
    ops = [random_general(16, seed=s) for s in (1, 2, 3)]

    def fn(a, b, c):
        acc = a
        for _ in range(loops):
            acc = (acc @ b + c - a) @ a.T
        return acc + acc.T

    graph = default_pipeline().run(trace(fn, ops))
    return graph, [t.data for t in ops]


@pytest.fixture(scope="module")
def workload():
    return _workload()


@pytest.fixture(scope="module")
def plan(workload):
    graph, _ = workload
    return compile_plan(graph, fusion=True)


# -- serialization ------------------------------------------------------------


class TestGraphSerialization:
    def test_round_trip_signature_and_results(self, workload):
        graph, feeds = workload
        rebuilt = graph_from_payload(graph_to_payload(graph))
        assert graph_signature(rebuilt) == graph_signature(graph)
        out_a, _ = compile_plan(graph).execute(feeds)
        out_b, _ = compile_plan(rebuilt).execute(feeds)
        for a, b in zip(out_a, out_b):
            assert np.array_equal(a, b)

    def test_round_trip_const_and_props(self):
        a = random_spd(8, seed=3)
        v = random_vector(8, seed=4)

        def fn(m, x):
            return m @ x + tfsim.constant(np.ones((8, 1), dtype=np.float32))

        graph = default_pipeline().run(trace(fn, [a, v]))
        rebuilt = graph_from_payload(graph_to_payload(graph))
        assert graph_signature(rebuilt) == graph_signature(graph)
        # Property annotations survive (they live in input attrs).
        assert any(
            Property.SPD in n.attrs.get("props", frozenset())
            for n in rebuilt.inputs
        )

    def test_round_trip_loop_body(self):
        a = random_general(8, seed=1)
        v = random_vector(8, seed=2)

        def fn(p, q):
            return tfsim.fori_loop(3, lambda i, x, aa: 0.5 * (aa @ x), q, [p])

        graph = default_pipeline().run(trace(fn, [a, v]))
        rebuilt = graph_from_payload(graph_to_payload(graph))
        assert graph_signature(rebuilt) == graph_signature(graph)
        feeds = [a.data, v.data]
        out_a, _ = compile_plan(graph).execute(feeds)
        out_b, _ = compile_plan(rebuilt).execute(feeds)
        assert np.array_equal(out_a[0], out_b[0])

    def test_version_mismatch_rejected(self, workload):
        graph, _ = workload
        payload = graph_to_payload(graph)
        payload["version"] = 999
        with pytest.raises(GraphError, match="version"):
            graph_from_payload(payload)

    def test_detached_input_keeps_feed_slot(self):
        ops = [random_general(8, seed=1), random_general(8, seed=2)]
        graph = default_pipeline().run(trace(lambda a, b: a @ a, ops))
        rebuilt = graph_from_payload(graph_to_payload(graph))
        assert len(rebuilt.inputs) == len(graph.inputs) == 2
        out_a, _ = compile_plan(graph).execute([t.data for t in ops])
        out_b, _ = compile_plan(rebuilt).execute([t.data for t in ops])
        assert np.array_equal(out_a[0], out_b[0])


class TestPlanPickling:
    def test_pickle_round_trip_parity(self, plan, workload):
        _, feeds = workload
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.signature == plan.signature
        assert clone.fusion_stats.sites == plan.fusion_stats.sites
        out_a, _ = plan.execute(feeds)
        out_b, _ = clone.execute(feeds)
        for a, b in zip(out_a, out_b):
            assert np.array_equal(a, b)

    def test_hand_built_plan_refuses_pickle(self, plan):
        from repro.runtime.plan import Plan

        bare = Plan(
            instructions=plan.instructions,
            inputs=plan.inputs,
            output_slots=plan.output_slots,
            num_slots=plan.num_slots,
            signature=plan.signature,
        )
        with pytest.raises(TypeError, match="cannot be pickled"):
            pickle.dumps(bare)


# -- the pool -----------------------------------------------------------------


class TestShardPool:
    def test_outputs_match_in_process_execution(self, plan, workload):
        _, feeds = workload
        ref, _ = plan.execute(feeds, record=False)
        with ShardPool(plan, shards=2, ring_slots=4,
                       dtype=np.float32) as pool:
            # 11 feeds over 2 workers with ring 4 → multiple waves, odd
            # remainder chunk.
            result = pool.run([feeds] * 11)
            assert len(result) == 11
            for outs in result.outputs:
                assert np.array_equal(outs[0], ref[0])

    def test_zero_worker_bytes_in_steady_state(self, plan, workload):
        _, feeds = workload
        with ShardPool(plan, shards=2, ring_slots=4,
                       dtype=np.float32) as pool:
            pool.run([feeds] * 8)  # warmup: const staging may copy once
            pool.run([feeds] * 8)
            assert pool.bytes_copied_last_run == 0

    def test_empty_batch(self, plan):
        with ShardPool(plan, shards=2, dtype=np.float32) as pool:
            result = pool.run([])
            assert len(result) == 0

    def test_feed_shape_checked_in_parent(self, plan, workload):
        _, feeds = workload
        with ShardPool(plan, shards=1, dtype=np.float32) as pool:
            bad = [feeds[0], feeds[1], np.ones((3, 3), dtype=np.float32)]
            with pytest.raises(GraphError, match="shape"):
                pool.run([bad])

    def test_execute_batch_shards_round_trip(self, plan, workload):
        _, feeds = workload
        ref, _ = plan.execute(feeds, record=False)
        result = execute_batch(plan, [feeds] * 5, shards=2)
        assert all(np.array_equal(o[0], ref[0]) for o in result.outputs)

    def test_execute_batch_shards_rejects_record(self, plan, workload):
        _, feeds = workload
        with pytest.raises(GraphError, match="record"):
            execute_batch(plan, [feeds] * 2, shards=2, record=True)

    def test_shard_count_validated(self, plan):
        with pytest.raises(GraphError, match="shards"):
            ShardPool(plan, shards=0)

    def test_closed_pool_rejects_runs_and_close_is_idempotent(
        self, plan, workload
    ):
        _, feeds = workload
        pool = ShardPool(plan, shards=1, dtype=np.float32)
        pool.run([feeds])
        pool.close()
        pool.close()
        with pytest.raises(ShardWorkerError, match="closed"):
            pool.run([feeds])

    def test_shared_memory_unlinked_on_close(self, plan, workload):
        from multiprocessing import shared_memory

        _, feeds = workload
        pool = ShardPool(plan, shards=2, dtype=np.float32)
        pool.run([feeds] * 2)
        names = [shm.name for shm in pool._shms]
        pool.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_shared_memory_unlinked_on_gc(self, plan, workload):
        from multiprocessing import shared_memory

        _, feeds = workload
        pool = ShardPool(plan, shards=1, dtype=np.float32)
        pool.run([feeds])
        names = [shm.name for shm in pool._shms]
        del pool
        gc.collect()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestWorkerFailure:
    def test_worker_death_breaks_pool_by_default(self, plan, workload):
        _, feeds = workload
        with ShardPool(plan, shards=2, dtype=np.float32) as pool:
            pool.run([feeds] * 4)
            pool._procs[0].kill()
            pool._procs[0].join()
            with pytest.raises(ShardWorkerError, match="died") as ei:
                pool.run([feeds] * 4)
            # Structured fields, not just a formatted string.
            assert ei.value.cause == "crash"
            assert ei.value.worker == 0
            assert ei.value.exitcode == -signal.SIGKILL
            # Broken is sticky: no half-working pools.
            with pytest.raises(ShardWorkerError, match="broken"):
                pool.run([feeds] * 4)

    def test_worker_death_respawns_when_asked(self, plan, workload):
        _, feeds = workload
        ref, _ = plan.execute(feeds, record=False)
        with ShardPool(plan, shards=2, dtype=np.float32,
                       respawn=True) as pool:
            pool.run([feeds] * 4)
            pool._procs[1].kill()
            pool._procs[1].join()
            result = pool.run([feeds] * 4)
            assert all(np.array_equal(o[0], ref[0]) for o in result.outputs)
            # Health counters record the recovery.
            assert pool.respawns == 1
            assert pool.waves_replayed == 1
            assert pool.hangs_detected == 0
            # Same pool keeps serving afterwards.
            result = pool.run([feeds] * 6)
            assert len(result) == 6

    def test_broken_pool_still_unlinks_shared_memory(self, plan, workload):
        from multiprocessing import shared_memory

        _, feeds = workload
        pool = ShardPool(plan, shards=1, dtype=np.float32)
        pool.run([feeds])
        names = [shm.name for shm in pool._shms]
        pool._procs[0].kill()
        pool._procs[0].join()
        with pytest.raises(ShardWorkerError):
            pool.run([feeds])
        pool.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_parent_side_feed_error_mid_wave_keeps_pool_aligned(
        self, plan, workload
    ):
        # Worker 0's chunk is written and dispatched before worker 1's
        # feeds fail validation in the parent: the in-flight reply must
        # be drained, or the next run() would read stale waves.
        _, feeds = workload
        ref, _ = plan.execute(feeds, record=False)
        with ShardPool(plan, shards=2, dtype=np.float32) as pool:
            bad = [feeds[0], feeds[1],
                   np.ones((3, 3), dtype=np.float32)]
            with pytest.raises(GraphError, match="shape"):
                pool.run([feeds, feeds, bad, feeds])
            for _ in range(2):  # aligned and correct afterwards
                result = pool.run([feeds] * 4)
                assert all(
                    np.array_equal(o[0], ref[0]) for o in result.outputs
                )

    @pytest.mark.skipif(not HAVE_FORK, reason="fork keeps these fast")
    def test_multi_shard_exception_drains_all_replies(
        self, fault_plan, workload
    ):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        ref, _ = plan.execute(feeds, record=False)

        # Each worker raises InjectedFault on its second ring entry.
        fault_plan("worker.exec:error@2")
        with ShardPool(plan, shards=2, start_method="fork",
                       dtype=np.float32) as pool:
            # Both workers serve 2 items and fault on their second:
            # both error replies must be consumed (first one raised).
            with pytest.raises(ShardWorkerError, match="injected fault") \
                    as ei:
                pool.run([feeds] * 4)
            assert ei.value.cause == "exec"
            assert ei.value.exitcode is None  # worker survived
            # One item per worker stays under the faulting hit — the
            # pool is still wave-aligned and serves correct results.
            result = pool.run([feeds] * 2)
            assert all(
                np.array_equal(o[0], ref[0]) for o in result.outputs
            )

    @pytest.mark.skipif(not HAVE_FORK, reason="fork keeps these fast")
    def test_mid_batch_exception_reports_and_pool_survives(
        self, fault_plan, workload
    ):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)

        # The worker's second ring entry explodes inside the worker.
        fault_plan("worker.exec:error@2")
        with ShardPool(plan, shards=1, start_method="fork",
                       dtype=np.float32) as pool:
            with pytest.raises(ShardWorkerError, match="injected fault"):
                pool.run([feeds] * 3)
            # The worker caught the exception and kept its loop: later
            # hits fall outside the fault's trigger window and serve.
            result = pool.run([feeds])
            assert len(result) == 1

    @pytest.mark.skipif(not HAVE_FORK, reason="fork keeps these fast")
    def test_hung_worker_detected_and_kill_escalated(
        self, fault_plan, workload
    ):
        # The hang action ignores SIGTERM, so plain terminate() leaves a
        # live process — this exercises the terminate→kill escalation
        # and the full detect/kill/respawn/replay cycle.  The trigger
        # fires on exec hit 3 (second run): the replayed wave's fresh
        # worker counts 1..2 and stays under it.
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        ref, _ = plan.execute(feeds, record=False)
        fault_plan("worker.exec:hang(60)@3")
        with ShardPool(plan, shards=1, start_method="fork",
                       dtype=np.float32, respawn=True,
                       wave_deadline=0.5) as pool:
            pool.run([feeds] * 2)
            hung = pool._procs[0]
            result = pool.run([feeds] * 2)
            assert all(
                np.array_equal(o[0], ref[0]) for o in result.outputs
            )
            assert pool.hangs_detected == 1
            assert pool.respawns == 1
            assert pool.waves_replayed == 1
            # terminate() was ignored; only the kill escalation reaped it.
            assert not hung.is_alive()
            assert hung.exitcode == -signal.SIGKILL

    @pytest.mark.skipif(not HAVE_FORK, reason="fork keeps these fast")
    def test_hang_without_respawn_breaks_pool_with_cause(
        self, fault_plan, workload
    ):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        fault_plan("worker.exec:hang(60)@1")
        with ShardPool(plan, shards=1, start_method="fork",
                       dtype=np.float32, wave_deadline=0.5) as pool:
            with pytest.raises(ShardWorkerError, match="hung") as ei:
                pool.run([feeds])
            assert ei.value.cause == "hang"
            assert ei.value.worker == 0
            assert ei.value.exitcode == -signal.SIGKILL
            with pytest.raises(ShardWorkerError, match="broken"):
                pool.run([feeds])

    @pytest.mark.skipif(not HAVE_FORK, reason="fork keeps these fast")
    def test_corrupt_reply_recovers_via_respawn(self, fault_plan, workload):
        # A garbled wave reply (pipe.send corruption in the worker) is
        # classified "protocol"; the worker is reaped and the wave
        # replayed on a replacement with correct results.
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        ref, _ = plan.execute(feeds, record=False)
        fault_plan("pipe.send:corrupt@2")
        with ShardPool(plan, shards=1, start_method="fork",
                       dtype=np.float32, respawn=True) as pool:
            pool.run([feeds])
            result = pool.run([feeds])
            assert np.array_equal(result.outputs[0][0], ref[0])
            assert pool.respawns == 1
            assert pool.waves_replayed == 1


# -- session integration ------------------------------------------------------


class TestSessionSharding:
    def test_options_validation(self):
        with pytest.raises(ConfigError, match="shards"):
            api.Options(shards=0).validate()
        api.Options(shards=2).validate()

    def test_run_sharded_matches_run_batch(self):
        A, B, C = (random_general(16, seed=s) for s in (1, 2, 3))

        def fn(a, b, c):
            return (a @ b + c) @ a.T

        with api.Session(fusion=True, arena="preallocated") as s:
            f = s.compile(fn)
            ref = s.run_batch(f, [[A, B, C]] * 5)
            sharded = s.run_sharded(f, [[A, B, C]] * 5, shards=2)
            for r, sh in zip(ref.outputs, sharded.outputs):
                assert np.array_equal(r[0], sh[0])

    def test_options_shards_routes_run_batch_and_caches_pool(self):
        A, B, C = (random_general(16, seed=s) for s in (4, 5, 6))

        def fn(a, b, c):
            return a @ b - c

        with api.Session(shards=2) as s:
            f = s.compile(fn)
            s.run_batch(f, [[A, B, C]] * 3)
            assert len(s._shard_pools) == 1
            pool = next(iter(s._shard_pools.values()))
            s.run_batch(f, [[A, B, C]] * 3)
            assert next(iter(s._shard_pools.values())) is pool
        # Context exit reclaimed the workers and segments.
        assert pool._closed

    def test_pool_cache_is_bounded_and_evicts_closed(self, monkeypatch):
        from repro.api import session as session_module

        monkeypatch.setattr(session_module, "_MAX_SHARD_POOLS", 1)
        A, B = random_general(8, seed=1), random_general(8, seed=2)
        with api.Session(shards=2) as s:
            f1 = s.compile(lambda a, b: a @ b)
            f2 = s.compile(lambda a, b: a @ b + a)
            s.run_batch(f1, [[A, B]] * 2)
            first = next(iter(s._shard_pools.values()))
            s.run_batch(f2, [[A, B]] * 2)
            # The LRU bound evicted (and closed) the first plan's pool.
            assert len(s._shard_pools) == 1
            assert first._closed
            assert next(iter(s._shard_pools.values())) is not first

    def test_recorded_batches_stay_in_process(self):
        A, B = random_general(8, seed=1), random_general(8, seed=2)

        with api.Session(shards=2) as s:
            f = s.compile(lambda a, b: a @ b)
            result = s.run_batch(f, [[A, B]] * 2, record=True)
            # In-process path records real reports; the shard path can't.
            assert all(r.calls for r in result.reports)
            assert not s._shard_pools


class TestSessionCloseLifecycle:
    """A Session is single-lifetime: close tears down shard pools and
    run_sharded on a closed session fails loudly at entry."""

    def _session_and_fn(self):
        A, B = random_general(8, seed=1), random_general(8, seed=2)
        s = api.Session(shards=2)
        return s, s.compile(lambda a, b: a @ b), [[A, B]] * 3

    def test_run_sharded_after_close_raises(self):
        s, f, feed_sets = self._session_and_fn()
        with s:
            s.run_batch(f, feed_sets)
        with pytest.raises(RuntimeError, match="session closed"):
            s.run_sharded(f, feed_sets, shards=2)

    def test_run_sharded_after_explicit_close_raises(self):
        s, f, feed_sets = self._session_and_fn()
        s.run_batch(f, feed_sets)
        s.close()
        with pytest.raises(RuntimeError, match="session closed"):
            s.run_batch(f, feed_sets)  # routes to run_sharded

    def test_close_and_close_shard_pools_are_idempotent(self):
        s, f, feed_sets = self._session_and_fn()
        s.run_batch(f, feed_sets)
        pool = next(iter(s._shard_pools.values()))
        s.close_shard_pools()
        s.close_shard_pools()  # second call is a no-op, not an error
        s.close()
        s.close()
        assert pool._closed
        assert s.closed
        assert not s._shard_pools

    def test_reentering_closed_session_raises(self):
        s, _, _ = self._session_and_fn()
        with s:
            pass
        with pytest.raises(RuntimeError, match="session closed"):
            with s:
                pass  # pragma: no cover

    def test_stats_render_sharding_line(self):
        s, f, feed_sets = self._session_and_fn()
        with s:
            s.run_batch(f, feed_sets)
            st = s.stats()
            assert st.shard_pools_open == 1
            assert st.shard_workers == 2
            assert st.shard_waves_served >= 1
            text = st.render()
            assert "sharding: 1 pool(s) open" in text
            assert "2 worker process(es)" in text
            assert "wave(s) served" in text
        # After close the pools are gone but served waves are remembered.
        st = s.stats()
        assert st.shard_pools_open == 0
        assert st.shard_waves_served >= 1

    def test_unsharded_session_stats_omit_sharding_line(self):
        A, B = random_general(8, seed=1), random_general(8, seed=2)
        with api.Session() as s:
            f = s.compile(lambda a, b: a @ b)
            f(A, B)
            assert "sharding:" not in s.stats().render()
