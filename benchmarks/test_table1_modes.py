"""Table I — Eager vs Graph vs MKL-C reference.

Expected shape (paper, n = 3000): row 1 indistinguishable across all five
columns; row 2 eager ≈ 1.5× graph (3 GEMMs vs 2 after CSE).
"""

import pytest

from repro.experiments.scipy_reference import gemm_reference, gram_reference
from repro.frameworks import pytsim, tfsim


@pytest.fixture(scope="module")
def compiled(dense):
    a, b, _ = dense

    @tfsim.function
    def tf_atb(p, q):
        return tfsim.transpose(p) @ q

    @pytsim.jit.script
    def pyt_atb(p, q):
        return p.T @ q

    @tfsim.function
    def tf_gram(p, q):
        return tfsim.transpose(tfsim.transpose(p) @ q) @ (tfsim.transpose(p) @ q)

    @pytsim.jit.script
    def pyt_gram(p, q):
        return (p.T @ q).T @ (p.T @ q)

    for fn in (tf_atb, pyt_atb, tf_gram, pyt_gram):
        fn.get_concrete(a, b)  # trace outside the timed region
    return tf_atb, pyt_atb, tf_gram, pyt_gram


@pytest.mark.benchmark(group="table1-row1-AtB")
class TestRow1:
    def test_mkl_c_reference(self, benchmark, dense, w):
        a, b, _ = dense
        af, bf = w.fortran(a), w.fortran(b)
        benchmark(lambda: gemm_reference(af, bf, trans_a=True))

    def test_tf_eager(self, benchmark, dense):
        a, b, _ = dense
        benchmark(lambda: tfsim.transpose(a) @ b)

    def test_pyt_eager(self, benchmark, dense):
        a, b, _ = dense
        benchmark(lambda: a.T @ b)

    def test_tf_graph(self, benchmark, dense, compiled):
        a, b, _ = dense
        tf_atb = compiled[0]
        benchmark(lambda: tf_atb(a, b))

    def test_pyt_graph(self, benchmark, dense, compiled):
        a, b, _ = dense
        pyt_atb = compiled[1]
        benchmark(lambda: pyt_atb(a, b))


@pytest.mark.benchmark(group="table1-row2-gram")
class TestRow2:
    def test_mkl_c_two_gemms(self, benchmark, dense, w):
        """Hand-written reference with an explicit temporary (2 GEMMs)."""
        a, b, _ = dense
        af, bf = w.fortran(a), w.fortran(b)
        benchmark(lambda: gram_reference(af, bf))

    def test_tf_eager(self, benchmark, dense):
        a, b, _ = dense

        def eager():
            return tfsim.transpose(tfsim.transpose(a) @ b) @ (
                tfsim.transpose(a) @ b
            )

        benchmark(eager)

    def test_pyt_eager(self, benchmark, dense):
        a, b, _ = dense
        benchmark(lambda: (a.T @ b).T @ (a.T @ b))

    def test_tf_graph(self, benchmark, dense, compiled):
        a, b, _ = dense
        tf_gram = compiled[2]
        benchmark(lambda: tf_gram(a, b))

    def test_pyt_graph(self, benchmark, dense, compiled):
        a, b, _ = dense
        pyt_gram = compiled[3]
        benchmark(lambda: pyt_gram(a, b))
