"""Problem sizes for experiments.

The paper uses n = 3000 throughout.  Default benches use the configured
``problem_size`` (1000) so the full suite finishes in minutes anywhere; the
CLI's ``--paper-scale`` switch restores 3000.  Ratios — the reproduction
target — are stable across this range because all the contrasted kernels
are O(n³)-vs-O(n²) or constant-factor separated.
"""

from __future__ import annotations

from ..config import config
from ..errors import ConfigError

#: Per-experiment size floor: below this the contrasted effects drown in
#: per-call overhead (empirically ~2 µs per kernel dispatch).
_MIN_SIZE = 64


def experiment_size(n: int | None = None) -> int:
    """Resolve the effective problem size (argument wins over config)."""
    size = config.problem_size if n is None else n
    if size < _MIN_SIZE:
        raise ConfigError(
            f"problem size {size} is below the measurement floor {_MIN_SIZE}; "
            "timings would measure dispatch overhead, not kernels"
        )
    if size % 2:
        size += 1  # blocked-matrix experiment needs an even n
    return size
