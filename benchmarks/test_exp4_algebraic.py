"""Table V — algebraic manipulation.

Expected shape: Eq9 LHS ≈ 2× RHS (two GEMMs vs one); Eq10 RHS ≫ LHS (the
RHS materializes HᵀH); blocked LHS ≈ 2× RHS.
"""

import pytest

from repro.frameworks import pytsim, tfsim


@pytest.fixture(scope="module")
def eq9(dense):
    a, b, c = dense

    @tfsim.function
    def lhs(p, q, r):
        return p @ q + p @ r

    @tfsim.function
    def rhs(p, q, r):
        return p @ (q + r)

    lhs.get_concrete(a, b, c)
    rhs.get_concrete(a, b, c)
    return lhs, rhs


@pytest.fixture(scope="module")
def eq10(w):
    a, h, x = w.general(0), w.general(3), w.vector(0)

    @pytsim.jit.script
    def lhs(p, hh, xx):
        return p @ xx - hh.T @ (hh @ xx)

    @pytsim.jit.script
    def rhs(p, hh, xx):
        return (p - hh.T @ hh) @ xx

    lhs.get_concrete(a, h, x)
    rhs.get_concrete(a, h, x)
    return (a, h, x), lhs, rhs


@pytest.fixture(scope="module")
def blocked(w, n):
    half = n // 2
    a1, a2, b1, b2 = w.blocks()

    @tfsim.function
    def lhs(p1, p2, q1, q2):
        z = tfsim.zeros(half, half)
        ab = tfsim.concat(
            [tfsim.concat([p1, z], axis=1), tfsim.concat([z, p2], axis=1)],
            axis=0,
        )
        return ab @ tfsim.concat([q1, q2], axis=0)

    @tfsim.function
    def rhs(p1, p2, q1, q2):
        return tfsim.concat([p1 @ q1, p2 @ q2], axis=0)

    lhs.get_concrete(a1, a2, b1, b2)
    rhs.get_concrete(a1, a2, b1, b2)
    return (a1, a2, b1, b2), lhs, rhs


@pytest.mark.benchmark(group="table5-eq9-distributivity")
class TestEq9:
    def test_lhs_AB_plus_AC(self, benchmark, dense, eq9):
        a, b, c = dense
        benchmark(lambda: eq9[0](a, b, c))

    def test_rhs_A_B_plus_C(self, benchmark, dense, eq9):
        a, b, c = dense
        benchmark(lambda: eq9[1](a, b, c))


@pytest.mark.benchmark(group="table5-eq10-distributivity")
class TestEq10:
    def test_lhs_three_gemvs(self, benchmark, eq10):
        args, lhs, _ = eq10
        benchmark(lambda: lhs(*args))

    def test_rhs_materializes_HtH(self, benchmark, eq10):
        args, _, rhs = eq10
        benchmark(lambda: rhs(*args))


@pytest.mark.benchmark(group="table5-blocked")
class TestBlocked:
    def test_lhs_full_gemm(self, benchmark, blocked):
        args, lhs, _ = blocked
        benchmark(lambda: lhs(*args))

    def test_rhs_per_block(self, benchmark, blocked):
        args, _, rhs = blocked
        benchmark(lambda: rhs(*args))
