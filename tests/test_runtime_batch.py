"""Batched execution of one plan over many feed sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.ir import trace
from repro.passes import default_pipeline
from repro.runtime import compile_plan, execute_batch
from repro.tensor import random_general


@pytest.fixture
def plan_and_feeds():
    fn = lambda a, b: (a.T @ b).T @ (a.T @ b)  # noqa: E731
    a0 = random_general(12, seed=1)
    b0 = random_general(12, seed=2)
    graph = default_pipeline().run(trace(fn, [a0, b0]))
    plan = compile_plan(graph)
    feed_sets = [
        [random_general(12, seed=100 + i).data,
         random_general(12, seed=200 + i).data]
        for i in range(6)
    ]
    return plan, feed_sets


def test_sequential_matches_single_runs(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    batch = execute_batch(plan, feed_sets)
    assert len(batch) == len(feed_sets)
    for feeds, outs in zip(feed_sets, batch.outputs):
        single, _ = plan.execute(feeds, record=False)
        assert outs[0].tobytes() == single[0].tobytes()


def test_threaded_matches_sequential(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    seq = execute_batch(plan, feed_sets, workers=1)
    par = execute_batch(plan, feed_sets, workers=4)
    for s, p in zip(seq.outputs, par.outputs):
        assert s[0].tobytes() == p[0].tobytes()


def test_recorded_batch_reports_match_single(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    batch = execute_batch(plan, feed_sets, workers=3, record=True)
    _, ref = plan.execute(feed_sets[0])
    for report in batch.reports:
        assert report.calls == ref.calls
        assert report.peak_bytes == ref.peak_bytes
    assert batch.total_flops == ref.total_flops * len(feed_sets)


def test_record_off_by_default(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    batch = execute_batch(plan, feed_sets[:2])
    assert all(r.calls == [] for r in batch.reports)


def test_first_outputs_helper(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    batch = execute_batch(plan, feed_sets[:3])
    firsts = batch.first_outputs()
    assert len(firsts) == 3
    assert all(isinstance(f, np.ndarray) for f in firsts)


def test_empty_batch(plan_and_feeds):
    plan, _ = plan_and_feeds
    batch = execute_batch(plan, [])
    assert len(batch) == 0 and batch.total_flops == 0


def test_negative_workers_rejected(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    with pytest.raises(GraphError):
        execute_batch(plan, feed_sets, workers=-1)
