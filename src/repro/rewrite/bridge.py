"""Bridge between the runtime IR (:class:`~repro.ir.graph.Graph`) and the
symbolic rewrite algebra (:class:`~repro.rewrite.expr.Expr`).

The derivation search (:func:`repro.rewrite.variants`) explores an
*expression* space — n-ary products, transposes pushed to leaves, sums
with merged coefficients — while plans compile from *graphs*.  Until now
the two never met: passes rewrite graphs directly, and the derivation
search only ran on hand-built expressions in experiments.  The online
autotuner (:mod:`repro.runtime.autotune`) needs both directions:

* :func:`graph_to_expr` lifts a single-output graph over the GEMM-tier
  op subset (input/const/matmul/transpose/add/sub/neg/scale) into an
  ``Expr`` plus an environment mapping symbol names back to the original
  leaf nodes.  Graphs containing anything else (loops, slices, concat,
  dot, structured-kernel hints) return ``None`` — the autotuner then
  races compile-knob candidates only.
* :func:`expr_to_graph` lowers an ``Expr`` back to builder nodes,
  binarizing every n-ary product with the matrix-chain DP
  (:func:`repro.chain.optimal_parenthesization`) — association is *not*
  part of expression identity, so this is where the search's "pick the
  best parenthesization" promise is actually cashed in.  Shared
  subexpressions map to shared nodes (memoized by expression key), so
  lowering does not lose the DAG structure CSE would have to recover.

Symbols are named positionally (``%a0`` for ``graph.inputs[0]``, ``%c0``
for the first const in topological order), not by ``Node.name`` — node
names embed a process-global uid, and the canonical sort order of
``Add`` terms keys on symbol names, so positional names are what make a
round trip deterministic across processes (the autotune determinism
contract).
"""

from __future__ import annotations

import numpy as np

from ..chain import optimal_parenthesization
from ..ir import builder
from ..ir.graph import Graph
from ..ir.node import Node
from .expr import Add, Expr, Identity, MatMul, Scale, Symbol, Transpose, Zero

__all__ = ["graph_to_expr", "expr_to_graph", "BRIDGED_OPS"]

#: Ops :func:`graph_to_expr` can lift.  ``matmul`` nodes carrying a
#: ``kernel`` attr (structured-kernel pins from the aware pipeline) are
#: excluded even though the op name matches — re-deriving around a
#: pinned kernel would silently drop the pin.
BRIDGED_OPS = frozenset(
    {"input", "const", "matmul", "transpose", "add", "sub", "neg", "scale"}
)


def graph_to_expr(
    graph: Graph,
) -> "tuple[Expr, dict[str, Node]] | None":
    """Lift ``graph`` into ``(expr, env)``; ``None`` when unsupported.

    ``env`` maps every symbol name in ``expr`` to the graph node it
    stands for (input placeholders and const nodes), which is exactly
    what :func:`expr_to_graph` needs to rebuild a graph over the *same*
    leaves — preserving input identity, order, and const payloads.
    """
    if len(graph.outputs) != 1:
        return None
    topo = graph.topological()
    for node in topo:
        if node.op not in BRIDGED_OPS:
            return None
        if node.op == "matmul" and node.attrs.get("kernel") is not None:
            return None
    env: dict[str, Node] = {}
    names: dict[int, str] = {}
    for i, node in enumerate(graph.inputs):
        names[id(node)] = f"%a{i}"
        env[f"%a{i}"] = node
    const_i = 0
    exprs: dict[int, Expr] = {}
    for node in topo:
        if node.op == "input":
            name = names[id(node)]
            expr: Expr = Symbol(
                name, node.shape[0], node.shape[1],
                props=node.attrs.get("props", frozenset()),
            )
        elif node.op == "const":
            name = f"%c{const_i}"
            const_i += 1
            env[name] = node
            expr = Symbol(name, node.shape[0], node.shape[1])
        elif node.op == "matmul":
            a, b = (exprs[id(x)] for x in node.inputs)
            if node.attrs.get("trans_a"):
                a = Transpose(a)
            if node.attrs.get("trans_b"):
                b = Transpose(b)
            expr = MatMul(a, b)
        elif node.op == "transpose":
            expr = Transpose(exprs[id(node.inputs[0])])
        elif node.op == "add":
            expr = Add(*(exprs[id(x)] for x in node.inputs))
        elif node.op == "sub":
            a, b = (exprs[id(x)] for x in node.inputs)
            expr = Add(a, Scale(-1.0, b))
        elif node.op == "neg":
            expr = Scale(-1.0, exprs[id(node.inputs[0])])
        else:  # scale
            expr = Scale(
                float(node.attrs["alpha"]), exprs[id(node.inputs[0])]
            )
        exprs[id(node)] = expr
    root = exprs[id(graph.outputs[0])]
    # Canonicalization can collapse the whole graph to a bare Zero /
    # Identity (no symbols left) — nothing to race there.
    return root, env


def expr_to_graph(
    expr: Expr,
    env: dict[str, Node],
    *,
    inputs: "tuple[Node, ...] | None" = None,
    dtype: object = "float32",
) -> Graph:
    """Lower ``expr`` back to a single-output :class:`Graph`.

    ``env`` binds symbol names to leaf nodes (from
    :func:`graph_to_expr`); ``inputs`` fixes the graph's input order —
    pass the original graph's ``inputs`` so the candidate binds the same
    positional feeds even when a rewrite eliminated one of them
    (declared-but-unreached inputs are legal).  ``dtype`` types the
    structural ``Identity``/``Zero`` constants a rewrite may introduce.
    """
    dtype = np.dtype(dtype)
    memo: dict[tuple, Node] = {}

    def lower(e: Expr) -> Node:
        key = e.key()
        node = memo.get(key)
        if node is not None:
            return node
        if isinstance(e, Symbol):
            node = env[e.name]
        elif isinstance(e, Identity):
            node = builder.const(np.eye(e.rows, dtype=dtype))
        elif isinstance(e, Zero):
            node = builder.const(np.zeros((e.rows, e.cols), dtype=dtype))
        elif isinstance(e, Transpose):
            node = builder.transpose(lower(e.child))
        elif isinstance(e, Scale):
            if e.alpha == -1.0:
                node = builder.neg(lower(e.child))
            else:
                node = builder.scale(lower(e.child), e.alpha)
        elif isinstance(e, Add):
            terms = e.terms
            node = lower(terms[0])
            for t in terms[1:]:
                if isinstance(t, Scale) and t.alpha == -1.0:
                    node = builder.sub(node, lower(t.child))
                else:
                    node = builder.add(node, lower(t))
        elif isinstance(e, MatMul):
            sol = optimal_parenthesization([f.shape for f in e.factors])

            def walk(tree: object) -> Node:
                if isinstance(tree, int):
                    return lower(e.factors[tree])
                left, right = tree
                return builder.matmul(walk(left), walk(right))

            node = walk(sol.tree)
        else:  # pragma: no cover - exhaustive over Expr subclasses
            raise TypeError(f"cannot lower {type(e).__name__}")
        memo[key] = node
        return node

    return Graph([lower(expr)], inputs=inputs)
