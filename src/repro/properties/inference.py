"""Forward property inference over the expression IR.

The paper's Sec. III-C discussion: *"The compilers in TF and PyT could also
exploit the optimized kernels if matrix properties are annotated on the
frameworks' computational graphs.  The propagation of matrix properties
through the graph would also facilitate algebraic simplifications."*

This module is that propagation: a single forward pass over the DAG that
computes a (closed) property set per node from input annotations, via the
transfer functions in :mod:`repro.properties.algebra`.  The
``property_dispatch`` pass consumes the result.
"""

from __future__ import annotations

import numpy as np

from ..ir.graph import Graph
from ..ir.node import Node
from ..tensor.properties import Property, PropertySet, closure, detect_properties
from . import algebra

#: Constants up to this size get full O(n²) property detection; larger ones
#: only cheap shape/zero checks (detection cost must not dwarf the graph
#: optimization itself).
_DETECT_LIMIT = 512


def _shape_props(shape: tuple[int, int]) -> set[Property]:
    props: set[Property] = {Property.GENERAL}
    if shape[0] == shape[1]:
        props.add(Property.SQUARE)
    if 1 in shape:
        props.add(Property.VECTOR)
    if shape == (1, 1):
        props.add(Property.SCALAR)
    return props


def _const_props(node: Node) -> PropertySet:
    value: np.ndarray = node.attrs["value"]
    if max(value.shape) <= _DETECT_LIMIT:
        return detect_properties(value)
    props = _shape_props(value.shape)
    if not value.any():
        props.add(Property.ZERO)
    return closure(props)


def _matmul_operand(node: Node, which: int, env: dict[int, PropertySet]) -> PropertySet:
    """Effective operand properties with the node's transpose flag applied."""
    inp = node.inputs[which]
    props = env[id(inp)]
    flag = "trans_a" if which == 0 else "trans_b"
    if node.attrs.get(flag):
        props = algebra.transpose_props(props)
    return props


def is_gram_pattern(node: Node) -> bool:
    """True for ``matmul(X, X)`` with exactly one transpose flag set —
    i.e. ``XᵀX`` or ``XXᵀ`` after transpose fusion."""
    if node.op != "matmul":
        return False
    a, b = node.inputs
    if a is not b:
        return False
    return bool(node.attrs.get("trans_a")) != bool(node.attrs.get("trans_b"))


def infer(graph: Graph) -> dict[int, PropertySet]:
    """Property set per node id, for every reachable node.

    Annotations enter through ``input`` nodes' ``props`` attr (recorded by
    the tracer from :class:`~repro.tensor.tensor.Tensor` annotations) and
    through constants (detected).  Everything else follows the transfer
    functions; unknown ops degrade to shape facts only — sound, never
    complete.
    """
    env: dict[int, PropertySet] = {}
    for node in graph.topological():
        if node.op == "input":
            annotated = node.attrs.get("props", frozenset())
            env[id(node)] = closure(set(annotated) | _shape_props(node.shape))
        elif node.op == "const":
            env[id(node)] = _const_props(node)
        elif node.op == "matmul":
            pa = _matmul_operand(node, 0, env)
            pb = _matmul_operand(node, 1, env)
            env[id(node)] = algebra.matmul_props(
                pa,
                pb,
                b_is_a_transposed=is_gram_pattern(node),
                square_result=node.shape[0] == node.shape[1],
            )
        elif node.op == "transpose":
            env[id(node)] = algebra.transpose_props(env[id(node.inputs[0])])
        elif node.op == "add":
            env[id(node)] = algebra.add_props(
                env[id(node.inputs[0])], env[id(node.inputs[1])]
            )
        elif node.op == "sub":
            env[id(node)] = algebra.add_props(
                env[id(node.inputs[0])], env[id(node.inputs[1])], negate_b=True
            )
        elif node.op == "neg":
            env[id(node)] = algebra.negate_props(env[id(node.inputs[0])])
        elif node.op == "scale":
            env[id(node)] = algebra.scale_props(
                env[id(node.inputs[0])], float(node.attrs["alpha"])
            )
        elif node.op == "slice":
            env[id(node)] = algebra.slice_props(
                env[id(node.inputs[0])], *node.shape
            )
        else:
            # dot, concat, tridiagonal_matmul, loop, future ops: shape facts.
            env[id(node)] = closure(_shape_props(node.shape))
    return env
