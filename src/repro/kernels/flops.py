"""Closed-form FLOP counts for every kernel in the substrate.

These formulas are the cost model behind the matrix-chain DP (Experiment 2),
the property-aware dispatcher (Experiment 3), and the derivation-graph
search (Experiment 4 / Linnea analogue).  They follow the conventions used
in the paper: a GEMM of (m×k)·(k×n) costs 2mkn, TRMM and SYRK cost half a
square GEMM, the tridiagonal product costs 6n², the diagonal product n².
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import KernelError


def flops_gemm(m: int, k: int, n: int) -> int:
    """GEMM (m×k)·(k×n): 2mkn FLOPs (mkn multiplies + mkn adds)."""
    return 2 * m * k * n


def flops_gemv(m: int, n: int) -> int:
    """GEMV (m×n)·(n): 2mn FLOPs."""
    return 2 * m * n


def flops_ger(m: int, n: int) -> int:
    """GER outer product (m)·(n)ᵀ: 2mn FLOPs (with the scaling folded in)."""
    return 2 * m * n


def flops_dot(n: int) -> int:
    """DOT of length-n vectors: 2n FLOPs."""
    return 2 * n


def flops_axpy(n: int) -> int:
    """AXPY of length-n vectors: 2n FLOPs."""
    return 2 * n


def flops_scal(n: int) -> int:
    """SCAL of a length-n vector: n FLOPs."""
    return n


def flops_trmm(n: int, m: int) -> int:
    """TRMM (n×n triangular)·(n×m): n²m FLOPs — half of the 2n²m GEMM."""
    return n * n * m


def flops_trmv(n: int) -> int:
    """TRMV (n×n triangular)·(n): n² FLOPs — half of the 2n² GEMV."""
    return n * n


def flops_syrk(n: int, k: int) -> int:
    """SYRK A·Aᵀ with A (n×k): n²k FLOPs — half of GEMM (only one triangle)."""
    return n * n * k


def flops_symm(n: int, m: int) -> int:
    """SYMM (n×n symmetric)·(n×m): 2n²m FLOPs (same count as GEMM; the
    saving is memory traffic, not arithmetic)."""
    return 2 * n * n * m


def flops_trsm(n: int, m: int) -> int:
    """TRSM triangular solve with m right-hand sides: n²m FLOPs."""
    return n * n * m


def flops_trsv(n: int) -> int:
    """TRSV triangular solve: n² FLOPs."""
    return n * n


def flops_tridiag_matmul(n: int, m: int) -> int:
    """Tridiagonal (n×n)·(n×m): 6nm FLOPs (3 multiplies + ~3 adds per
    element); the paper quotes 6n² for the square case."""
    return 6 * n * m


def flops_diag_matmul(n: int, m: int) -> int:
    """Diagonal (n×n)·(n×m): nm FLOPs (one scaling per element)."""
    return n * m


def flops_matrix_add(m: int, n: int) -> int:
    """Element-wise matrix add/subtract: mn FLOPs."""
    return m * n


def flops_matrix_scale(m: int, n: int) -> int:
    """Element-wise matrix scaling: mn FLOPs."""
    return m * n


def flops_potrf(n: int) -> int:
    """POTRF Cholesky factorization: n³/3 FLOPs."""
    return n * n * n // 3


def flops_getrf(n: int) -> int:
    """GETRF LU factorization: 2n³/3 FLOPs."""
    return 2 * n * n * n // 3


def flops_transpose(m: int, n: int) -> int:
    """Explicit transpose: 0 FLOPs (pure data movement, mn memops)."""
    return 0


#: Registry mapping kernel names to their FLOP formulas, keyed the way the
#: IR interpreter reports executed kernels.
FLOP_FORMULAS: dict[str, Callable[..., int]] = {
    "gemm": flops_gemm,
    "gemv": flops_gemv,
    "ger": flops_ger,
    "dot": flops_dot,
    "axpy": flops_axpy,
    "scal": flops_scal,
    "trmm": flops_trmm,
    "trmv": flops_trmv,
    "syrk": flops_syrk,
    "symm": flops_symm,
    "trsm": flops_trsm,
    "trsv": flops_trsv,
    "tridiagonal_matmul": flops_tridiag_matmul,
    "diag_matmul": flops_diag_matmul,
    "add": flops_matrix_add,
    "sub": flops_matrix_add,
    "scale": flops_matrix_scale,
    "potrf": flops_potrf,
    "getrf": flops_getrf,
    "transpose": flops_transpose,
}


def kernel_flops(kernel: str, *dims: int) -> int:
    """Look up the FLOP count of ``kernel`` for the given dimensions.

    >>> kernel_flops("gemm", 3000, 3000, 3000)
    54000000000
    """
    try:
        formula = FLOP_FORMULAS[kernel]
    except KeyError:
        raise KernelError(f"no FLOP formula registered for kernel {kernel!r}") from None
    return formula(*dims)
