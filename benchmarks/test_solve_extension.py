"""Linear-system extension — property-aware solves (paper's future work).

Expected shape: Cholesky ≈ 0.5× LU for SPD systems; TRSV ≪ LU for
triangular systems.
"""

import numpy as np
import pytest

from repro.kernels import blas2, lapack


@pytest.fixture(scope="module")
def systems(w, n):
    rhs = np.ascontiguousarray(w.vector(0).numpy()).ravel()
    spd = w.fortran(w.spd())
    tri = w.fortran(w.lower_triangular()) + np.eye(n, dtype=np.float32)
    return rhs, spd, tri


@pytest.mark.benchmark(group="solve-spd")
class TestSpd:
    def test_blind_lu(self, benchmark, systems):
        rhs, spd, _ = systems
        benchmark(lambda: lapack.lu_solve(spd, rhs))

    def test_aware_cholesky(self, benchmark, systems):
        rhs, spd, _ = systems
        benchmark(lambda: lapack.cholesky_solve(spd, rhs))


@pytest.mark.benchmark(group="solve-triangular")
class TestTriangular:
    def test_blind_lu(self, benchmark, systems):
        rhs, _, tri = systems
        benchmark(lambda: lapack.lu_solve(tri, rhs))

    def test_aware_trsv(self, benchmark, systems):
        rhs, _, tri = systems
        benchmark(lambda: blas2.trsv(tri, rhs, lower=True))
