"""Measurement harness: timing, bootstrap significance, reporting.

Methodology follows the paper's Sec. III: single-threaded (pinned via
``repro.config.limit_threads``), min over N repetitions (default 20, as in
the paper), significance via the bootstrap approach of Sankaran &
Bientinesi [11].
"""

from .timing import TimingSample, measure, measure_callable_pair
from .bootstrap import BootstrapResult, Verdict, bootstrap_compare
from .reporting import Cell, ExperimentTable, format_seconds
from .registry import EXPERIMENTS, register_experiment, get_experiment

__all__ = [
    "TimingSample",
    "measure",
    "measure_callable_pair",
    "BootstrapResult",
    "Verdict",
    "bootstrap_compare",
    "Cell",
    "ExperimentTable",
    "format_seconds",
    "EXPERIMENTS",
    "register_experiment",
    "get_experiment",
]
