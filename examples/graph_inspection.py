"""Inspecting computational graphs — regenerates the paper's Fig. 3 and 4.

Run:  python examples/graph_inspection.py [n]

Compiles the parenthesized and non-parenthesized Gram expressions through
a :class:`repro.api.Session`, prints the initial and optimized DAGs, shows
the per-pass optimization log, and writes Graphviz DOT files next to this
script.
"""

import pathlib
import sys

from repro import limit_threads

limit_threads(1)

from repro import api  # noqa: E402
from repro import tensor as T  # noqa: E402
from repro.frameworks import tfsim  # noqa: E402
from repro.ir.pretty import graph_to_dot, render_graph  # noqa: E402


def parenthesized(p, q):
    return tfsim.transpose(tfsim.transpose(p) @ q) @ (tfsim.transpose(p) @ q)


def unparenthesized(p, q):
    return tfsim.transpose(tfsim.transpose(p) @ q) @ tfsim.transpose(p) @ q


def main(n: int = 128) -> None:
    a = T.random_general(n, seed=1)
    b = T.random_general(n, seed=2)

    with api.Session(backend="tfsim") as session:
        paren = session.compile(parenthesized)
        noparen = session.compile(unparenthesized)

        concrete = paren.get_concrete(a, b)
        print(render_graph(concrete.graph, title="Fig. 3 initial: (AᵀB)ᵀ(AᵀB)"))
        print()
        print(render_graph(concrete.optimized, title="Fig. 3 optimized"))
        print("\nper-pass log:")
        print(concrete.pipeline_log)

        print()
        concrete2 = noparen.get_concrete(a, b)
        print(render_graph(concrete2.optimized,
                           title="Fig. 4: (AᵀB)ᵀAᵀB — no duplicates, CSE finds nothing"))

    out_dir = pathlib.Path(__file__).resolve().parent
    for name, graph in [
        ("fig3_initial", concrete.graph),
        ("fig3_optimized", concrete.optimized),
        ("fig4_optimized", concrete2.optimized),
    ]:
        path = out_dir / f"{name}.dot"
        path.write_text(graph_to_dot(graph, name=name))
        print(f"wrote {path}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 128)
