"""LAPACK factorization wrappers used by the linear-system extension.

The paper's conclusion names "exploitation of properties in the solution of
linear systems" as a natural extension; these kernels power that extension
(``repro.experiments`` ships an ablation bench comparing GESV against a
property-aware Cholesky path for SPD systems).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lapack as _lapack

from ..errors import KernelError, ShapeError
from .validation import as_ndarray, require_matrix, require_same_dtype, require_square

_POTRF = {np.dtype(np.float32): _lapack.spotrf, np.dtype(np.float64): _lapack.dpotrf}
_POTRS = {np.dtype(np.float32): _lapack.spotrs, np.dtype(np.float64): _lapack.dpotrs}
_GETRF = {np.dtype(np.float32): _lapack.sgetrf, np.dtype(np.float64): _lapack.dgetrf}
_GETRS = {np.dtype(np.float32): _lapack.sgetrs, np.dtype(np.float64): _lapack.dgetrs}


def _routine(table: dict, dtype: np.dtype, name: str):
    try:
        return table[np.dtype(dtype)]
    except KeyError:  # pragma: no cover
        raise KernelError(f"no {name} kernel for dtype {dtype}") from None


def potrf(a: np.ndarray, *, lower: bool = True) -> np.ndarray:
    """POTRF: Cholesky factor of an SPD matrix (~n³/3 FLOPs).

    Returns the triangular factor with the unused triangle zeroed.
    Raises :class:`KernelError` if the matrix is not positive definite.
    """
    a = require_square(as_ndarray(a, "a"), "a")
    fn = _routine(_POTRF, a.dtype, "potrf")
    c, info = fn(a, lower=1 if lower else 0)
    if info != 0:
        raise KernelError(f"potrf failed: leading minor {info} is not positive definite")
    return np.tril(c) if lower else np.triu(c)


def cholesky_solve(a: np.ndarray, b: np.ndarray, *, lower: bool = True) -> np.ndarray:
    """Solve ``A x = b`` for SPD ``A`` via POTRF + POTRS (~n³/3 + 2n²·nrhs FLOPs).

    This is half the cost of the general LU path — the saving a
    property-aware framework would exploit for SPD systems.
    """
    a = require_square(as_ndarray(a, "a"), "a")
    b = as_ndarray(b, "b")
    require_same_dtype((a, "a"), (b, "b"))
    rhs = b if b.ndim == 2 else b.reshape(-1, 1)
    if rhs.shape[0] != a.shape[0]:
        raise ShapeError(f"cholesky_solve: A is {a.shape}, b is {b.shape}")
    factor_fn = _routine(_POTRF, a.dtype, "potrf")
    solve_fn = _routine(_POTRS, a.dtype, "potrs")
    c, info = factor_fn(a, lower=1 if lower else 0)
    if info != 0:
        raise KernelError(f"potrf failed: leading minor {info} is not positive definite")
    x, info = solve_fn(c, rhs, lower=1 if lower else 0)
    if info != 0:  # pragma: no cover - potrs only fails on bad arguments
        raise KernelError(f"potrs failed with info={info}")
    return x if b.ndim == 2 else x.ravel()


def getrf(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """GETRF: LU factorization with partial pivoting (~2n³/3 FLOPs).

    Returns ``(lu, piv)`` in LAPACK's packed format.
    """
    a = require_matrix(as_ndarray(a, "a"), "a")
    fn = _routine(_GETRF, a.dtype, "getrf")
    lu, piv, info = fn(a)
    if info < 0:  # pragma: no cover
        raise KernelError(f"getrf: illegal argument {-info}")
    if info > 0:
        raise KernelError(f"getrf: matrix is singular (U[{info-1},{info-1}] == 0)")
    return lu, piv


def lu_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` for general ``A`` via GETRF + GETRS (~2n³/3 FLOPs)."""
    a = require_square(as_ndarray(a, "a"), "a")
    b = as_ndarray(b, "b")
    require_same_dtype((a, "a"), (b, "b"))
    rhs = b if b.ndim == 2 else b.reshape(-1, 1)
    if rhs.shape[0] != a.shape[0]:
        raise ShapeError(f"lu_solve: A is {a.shape}, b is {b.shape}")
    lu, piv = getrf(a)
    solve_fn = _routine(_GETRS, a.dtype, "getrs")
    x, info = solve_fn(lu, piv, rhs)
    if info != 0:  # pragma: no cover
        raise KernelError(f"getrs failed with info={info}")
    return x if b.ndim == 2 else x.ravel()
