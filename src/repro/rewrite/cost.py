"""FLOP cost of a symbolic expression.

N-ary products are costed with the matrix-chain DP over the factor shapes
(association is an optimization detail, not expression identity), sums cost
(k−1)·mn, scalings mn, transposes of leaves 0 (they fold into the kernels'
TRANS flags).  An optional property-aware mode halves the cost of products
whose left factor is a triangular symbol — enough to let the derivation
graph reason about Experiment 3-style savings.
"""

from __future__ import annotations

from ..chain.dp import optimal_parenthesization
from ..tensor.properties import Property
from .expr import Add, Expr, Identity, MatMul, Scale, Symbol, Transpose, Zero


def _leaf_cost(expr: Expr, aware: bool) -> int:
    return 0


def expr_flops(expr: Expr, *, aware: bool = False) -> int:
    """Total FLOPs to evaluate ``expr`` (chain products at DP optimum).

    >>> H = Symbol("H", 4, 4); x = Symbol("x", 4, 1)
    >>> expr_flops(MatMul(Transpose(H), H, x))  # evaluated right-to-left
    64
    """
    if isinstance(expr, (Symbol, Identity, Zero)):
        return 0
    if isinstance(expr, Transpose):
        # transpose of a leaf folds into downstream TRANS flags
        return expr_flops(expr.child, aware=aware)
    if isinstance(expr, Scale):
        return expr_flops(expr.child, aware=aware) + expr.rows * expr.cols
    if isinstance(expr, Add):
        inner = sum(expr_flops(t, aware=aware) for t in expr.terms)
        return inner + (len(expr.terms) - 1) * expr.rows * expr.cols
    if isinstance(expr, MatMul):
        inner = sum(expr_flops(f, aware=aware) for f in expr.factors)
        shapes = [f.shape for f in expr.factors]
        chain = optimal_parenthesization(shapes).flops
        if aware:
            chain = _aware_chain_discount(expr, chain)
        return inner + chain
    raise TypeError(f"unknown expression type {type(expr).__name__}")


def _aware_chain_discount(expr: MatMul, chain_flops: int) -> int:
    """Crude structured-kernel discount for aware costing.

    If the two-factor product has a triangular or diagonal left symbol the
    DP cost is replaced by the structured kernel's cost.  Longer chains are
    left at the DP estimate (a full treatment would thread properties
    through the DP; out of scope for the cost model's role here).
    """
    if len(expr.factors) != 2:
        return chain_flops
    left, right = expr.factors
    base = left.child if isinstance(left, Transpose) else left
    if not isinstance(base, Symbol):
        return chain_flops
    m, k = left.shape
    n = right.cols
    if Property.DIAGONAL in base.props:
        return k * n
    if Property.TRIDIAGONAL in base.props:
        return 6 * k * n
    if (
        Property.LOWER_TRIANGULAR in base.props
        or Property.UPPER_TRIANGULAR in base.props
    ):
        return m * m * n // 1 if m == k else chain_flops
    return chain_flops
