"""Tests for the opt-in "linear-algebra-aware" passes."""

import numpy as np
import pytest

from repro.ir import run_graph, trace
from repro.passes import (
    ChainReordering,
    DistributivityRewrite,
    PartialOperandAccess,
    PassPipeline,
    PropertyDispatch,
    aware_pipeline,
    default_pipeline,
)
from repro.passes.estimate import subtree_flops


def _optimize_and_check(fn, args, pipeline):
    g = trace(fn, args)
    feeds = [a.data for a in args]
    before, rep_before = run_graph(g, feeds)
    opt = pipeline.run(g)
    after, rep_after = run_graph(opt, feeds)
    for x, y in zip(before, after):
        assert np.allclose(x, y, rtol=2e-3, atol=1e-3), np.abs(x - y).max()
    return rep_before, rep_after, opt


class TestChainReordering:
    def test_right_to_left_chain(self, operands):
        """HᵀHx -> Hᵀ(Hx): O(n³) becomes O(n²) (paper Table III row 1)."""
        rb, ra, opt = _optimize_and_check(
            lambda h, x: h.T @ h @ x,
            [operands["H"], operands["x"]],
            PassPipeline([ChainReordering()]),
        )
        assert ra.total_flops < rb.total_flops
        assert ra.kernel_counts().get("gemm", 0) == 0  # only gemv remains

    def test_left_to_right_untouched(self, operands):
        """yᵀHᵀH is already optimal left-to-right (Table III row 2)."""
        rb, ra, _ = _optimize_and_check(
            lambda h, y: y.T @ h.T @ h,
            [operands["H"], operands["y"]],
            PassPipeline([default_pipeline().passes[1], ChainReordering()]),
        )
        assert ra.total_flops <= rb.total_flops

    def test_mixed_chain(self, operands):
        """HᵀyxᵀH -> (Hᵀy)(xᵀH) (Table III row 3)."""
        rb, ra, _ = _optimize_and_check(
            lambda h, x, y: h.T @ y @ x.T @ h,
            [operands["H"], operands["x"], operands["y"]],
            PassPipeline([ChainReordering()]),
        )
        n = operands["H"].shape[0]
        assert ra.total_flops < rb.total_flops
        # optimal: 2 gemvs + 1 outer product = O(n²)
        assert ra.total_flops <= 8 * n * n

    def test_shared_product_is_barrier(self, operands):
        """A product consumed twice must not be re-associated away."""
        def fn(a, b, x):
            t = a @ b  # shared
            return (t @ x, t + t)

        g = trace(fn, [operands["A"], operands["B"], operands["x"]])
        opt = ChainReordering().run(g)
        feeds = [operands[k].data for k in ("A", "B", "x")]
        before, _ = run_graph(g, feeds)
        after, rep = run_graph(opt, feeds)
        for x, y in zip(before, after):
            assert np.allclose(x, y, atol=1e-4)
        # a@b must still be computed once as a gemm
        assert rep.kernel_counts()["gemm"] == 1

    def test_transpose_distribution_over_chain(self, operands):
        """(AB)ᵀ x reassociates via (AB)ᵀ = BᵀAᵀ when profitable."""
        rb, ra, _ = _optimize_and_check(
            lambda a, b, x: (a @ b).T @ x,
            [operands["A"], operands["B"], operands["x"]],
            PassPipeline([ChainReordering()]),
        )
        assert ra.total_flops < rb.total_flops
        assert ra.kernel_counts().get("gemm", 0) == 0

    def test_noop_on_two_factor_product(self, operands):
        g = trace(lambda a, b: a @ b, [operands["A"], operands["B"]])
        opt = ChainReordering().run(g)
        assert opt.op_counts()["matmul"] == 1

    def test_gram_chain_recognized(self, operands):
        """(AᵀB)ᵀAᵀB = BᵀA·AᵀB = SᵀS: the palindromic chain collapses to
        one shared product — beating even the paper's parenthesized form."""
        rb, ra, opt = _optimize_and_check(
            lambda a, b: (a.T @ b).T @ a.T @ b,
            [operands["A"], operands["B"]],
            PassPipeline([default_pipeline().passes[1], ChainReordering()]),
        )
        assert rb.kernel_counts()["gemm"] == 3
        assert ra.kernel_counts()["gemm"] == 2  # S and SᵀS

    def test_gram_chain_of_six(self, operands):
        """BᵀAᵀ(AB)·(AB) ... a longer palindrome: (AB)ᵀ(AB) over S = AB
        recognized from the flattened 4-chain BᵀAᵀAB."""
        rb, ra, _ = _optimize_and_check(
            lambda a, b: (a @ b).T @ (a @ b).T.T,
            [operands["A"], operands["B"]],
            PassPipeline([default_pipeline().passes[1], ChainReordering()]),
        )
        assert ra.total_flops <= rb.total_flops

    def test_non_palindrome_not_gramified(self, operands):
        """BᵀA·AᵀC is not palindromic — no gram rewrite applies."""
        g = trace(lambda a, b, c: b.T @ a @ a.T @ c,
                  [operands["A"], operands["B"], operands["C"]])
        from repro.passes import TransposeElimination

        opt = PassPipeline([TransposeElimination(), ChainReordering()]).run(g)
        feeds = [operands[k].data for k in ("A", "B", "C")]
        before, _ = run_graph(g, feeds)
        after, rep = run_graph(opt, feeds)
        assert np.allclose(before[0], after[0], rtol=1e-3, atol=1e-3)
        assert rep.kernel_counts()["gemm"] == 3


class TestPropertyDispatch:
    def _dispatch(self, fn, args):
        g = trace(fn, args)
        opt = PassPipeline(
            [default_pipeline().passes[1], PropertyDispatch()]
        ).run(g)  # transpose_elim first so gram patterns appear
        feeds = [a.data for a in args]
        before, _ = run_graph(g, feeds)
        after, rep = run_graph(opt, feeds)
        for x, y in zip(before, after):
            assert np.allclose(x, y, rtol=1e-3, atol=1e-3)
        return rep, opt

    def test_triangular_gets_trmm(self, operands):
        rep, _ = self._dispatch(lambda l, b: l @ b,
                                [operands["L"], operands["B"]])
        assert rep.kernel_counts() == {"trmm": 1}

    def test_upper_triangular_via_transpose(self, operands):
        rep, _ = self._dispatch(lambda l, b: l.T @ b,
                                [operands["L"], operands["B"]])
        assert "trmm" in rep.kernel_counts()

    def test_gram_gets_syrk(self, operands):
        rep, _ = self._dispatch(lambda a: a @ a.T, [operands["A"]])
        assert rep.kernel_counts() == {"syrk": 1}

    def test_gram_transposed_gets_syrk(self, operands):
        rep, _ = self._dispatch(lambda a: a.T @ a, [operands["A"]])
        assert rep.kernel_counts() == {"syrk": 1}

    def test_diagonal_gets_scaling(self, operands):
        rep, _ = self._dispatch(lambda d, b: d @ b,
                                [operands["D"], operands["B"]])
        assert rep.kernel_counts() == {"diag_matmul": 1}

    def test_tridiagonal_gets_banded(self, operands):
        rep, _ = self._dispatch(lambda t, b: t @ b,
                                [operands["T"], operands["B"]])
        assert rep.kernel_counts() == {"tridiagonal_matmul": 1}

    def test_symmetric_gets_symm(self, operands):
        rep, _ = self._dispatch(lambda s, b: s @ b,
                                [operands["S"], operands["B"]])
        assert rep.kernel_counts() == {"symm": 1}

    def test_orthogonal_gram_becomes_identity(self, operands):
        rep, opt = self._dispatch(lambda q: q.T @ q, [operands["Q"]])
        assert opt.op_counts().get("matmul", 0) == 0
        assert rep.total_flops == 0

    def test_general_untouched(self, operands):
        rep, _ = self._dispatch(lambda a, b: a @ b,
                                [operands["A"], operands["B"]])
        assert rep.kernel_counts() == {"gemm": 1}

    def test_flops_halved_for_trmm(self, operands):
        n = operands["L"].shape[0]
        rep, _ = self._dispatch(lambda l, b: l @ b,
                                [operands["L"], operands["B"]])
        assert rep.total_flops == n * n * n  # vs 2n³ for gemm


class TestDistributivity:
    def test_factoring_eq9(self, operands):
        """AB + AC -> A(B+C): one GEMM saved (paper Eq. 9)."""
        rb, ra, _ = _optimize_and_check(
            lambda a, b, c: a @ b + a @ c,
            [operands["A"], operands["B"], operands["C"]],
            PassPipeline([DistributivityRewrite()]),
        )
        assert ra.kernel_counts()["gemm"] == 1
        assert rb.kernel_counts()["gemm"] == 2

    def test_factoring_common_right(self, operands):
        rb, ra, _ = _optimize_and_check(
            lambda a, b, c: b @ a + c @ a,
            [operands["A"], operands["B"], operands["C"]],
            PassPipeline([DistributivityRewrite()]),
        )
        assert ra.kernel_counts()["gemm"] == 1

    def test_expansion_eq10(self, operands):
        """(A − HᵀH)x -> Ax − Hᵀ(Hx): O(n³) becomes O(n²) (paper Eq. 10)."""
        rb, ra, _ = _optimize_and_check(
            lambda a, h, x: (a - h.T @ h) @ x,
            [operands["A"], operands["H"], operands["x"]],
            PassPipeline(
                [default_pipeline().passes[1], DistributivityRewrite(),
                 ChainReordering()]
            ),
        )
        assert ra.kernel_counts().get("gemm", 0) == 0
        assert ra.total_flops < rb.total_flops / 2

    def test_no_expansion_when_unprofitable(self, operands):
        """(B + C)x with plain inputs: expansion would double the GEMVs."""
        g = trace(lambda b, c, x: (b + c) @ x,
                  [operands["B"], operands["C"], operands["x"]])
        opt = DistributivityRewrite().run(g)
        _, rep = run_graph(opt, [operands[k].data for k in ("B", "C", "x")])
        assert rep.kernel_counts().get("gemv", 0) == 1


class TestPartialAccess:
    def test_sum_element(self, operands):
        """(A+B)[2,2] -> A[2,2]+B[2,2] (paper Fig. 9)."""
        rb, ra, opt = _optimize_and_check(
            lambda a, b: (a + b)[2, 2],
            [operands["A"], operands["B"]],
            PassPipeline([PartialOperandAccess()]),
        )
        # the add now operates on 1x1 slices
        (add,) = opt.nodes_by_op("add")
        assert add.shape == (1, 1)

    def test_product_element(self, operands):
        """(AB)[2,2] -> row·col (paper Fig. 9)."""
        rb, ra, opt = _optimize_and_check(
            lambda a, b: (a @ b)[2, 2],
            [operands["A"], operands["B"]],
            PassPipeline([PartialOperandAccess()]),
        )
        assert ra.kernel_counts().get("gemm", 0) == 0
        assert ra.total_flops < rb.total_flops

    def test_product_block(self, operands):
        """A rectangular sub-block of a product shrinks the GEMM."""
        rb, ra, _ = _optimize_and_check(
            lambda a, b: (a @ b)[0:4, 0:6],
            [operands["A"], operands["B"]],
            PassPipeline([PartialOperandAccess()]),
        )
        assert ra.total_flops < rb.total_flops

    def test_shared_producer_untouched(self, operands):
        """If the full product is needed elsewhere, don't split the slice."""
        def fn(a, b):
            t = a @ b
            return (t[2, 2], t)

        g = trace(fn, [operands["A"], operands["B"]])
        opt = PartialOperandAccess().run(g)
        _, rep = run_graph(opt, [operands["A"].data, operands["B"].data])
        assert rep.kernel_counts().get("gemm", 0) == 1

    def test_transpose_slice_swaps(self, operands):
        rb, ra, _ = _optimize_and_check(
            lambda a, b: (a @ b).T[1, 2],
            [operands["A"], operands["B"]],
            PassPipeline([PartialOperandAccess()]),
        )
        assert ra.total_flops < rb.total_flops


class TestAwarePipelineEndToEnd:
    @pytest.mark.parametrize(
        "name,fn_builder,arg_keys",
        [
            ("chain", lambda: (lambda h, x: h.T @ h @ x), ("H", "x")),
            ("trmm", lambda: (lambda l, b: l @ b), ("L", "B")),
            ("gram", lambda: (lambda a: a @ a.T), ("A",)),
            ("eq9", lambda: (lambda a, b, c: a @ b + a @ c), ("A", "B", "C")),
            ("eq10", lambda: (lambda a, h, x: (a - h.T @ h) @ x), ("A", "H", "x")),
            ("partial", lambda: (lambda a, b: (a @ b)[2, 2]), ("A", "B")),
            ("ortho", lambda: (lambda q, a: q.T @ q @ a), ("Q", "A")),
        ],
    )
    def test_aware_never_worse_in_flops(self, operands, name, fn_builder, arg_keys):
        args = [operands[k] for k in arg_keys]
        g = trace(fn_builder(), args)
        feeds = [a.data for a in args]
        base = default_pipeline().run(g)
        _, rep_base = run_graph(base, feeds)
        g2 = trace(fn_builder(), args)
        aware = aware_pipeline().run(g2)
        out_base, _ = run_graph(base, feeds)
        out_aware, rep_aware = run_graph(aware, feeds)
        for x, y in zip(out_base, out_aware):
            assert np.allclose(x, y, rtol=2e-2, atol=2e-3), (
                name, np.abs(x - y).max())
        assert rep_aware.total_flops <= rep_base.total_flops, name
