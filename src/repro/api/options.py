"""Per-session configuration: the :class:`Options` dataclass.

Everything a :class:`~repro.api.session.Session` lets you choose lives
here, with one ``validate()`` gate so a bad knob fails at session
construction instead of mid-run.
"""

from __future__ import annotations

import dataclasses
import os

from ..errors import ConfigError
from ..runtime.batch import ARENA_MODES

#: Pipeline choices a backend profile understands.
PIPELINES = ("default", "aware")

# ARENA_MODES (re-exported from repro.runtime.batch, the single source of
# truth shared with ``execute_batch``):
#: ``per-call``      every execution materializes fresh intermediates
#:                   (the PR-1 behaviour — results are independent arrays);
#: ``preallocated``  per-slot ndarray storage is allocated once and reused
#:                   via the kernels' ``out=`` variants — repeated
#:                   execution is allocation-free after warmup.  Results
#:                   returned through the Session layer are copied out of
#:                   the arena, so user-visible values stay independent.
__all__ = ["ARENA_MODES", "PIPELINES", "VALIDATION_LEVELS", "Options"]

#: Graph-validation levels applied around trace/optimize:
#: ``off``   no structural checks (the PR-1 decorator behaviour);
#: ``trace`` validate the freshly traced graph;
#: ``full``  validate the traced *and* the optimized graph — catches
#:           passes that corrupt shapes/wiring before a plan is built.
VALIDATION_LEVELS = ("off", "trace", "full")


@dataclasses.dataclass(frozen=True)
class Options:
    """Knobs of one :class:`~repro.api.session.Session`.

    Attributes
    ----------
    backend:
        Default backend name used by ``session.compile`` when none is
        given (must be resolvable via :func:`repro.api.backend`).
    pipeline:
        Default optimization pipeline: ``"default"`` (the TF/PyT-faithful
        passes) or ``"aware"`` (the paper's linear-algebra-aware set).
    cache_capacity:
        Max entries of the session-owned :class:`~repro.runtime.PlanCache`.
    batch_workers:
        Default worker count for ``session.run_batch``; ``None``/``0``/``1``
        executes sequentially, ``k > 1`` uses a thread pool.
    validation:
        Graph-validation level, one of :data:`VALIDATION_LEVELS`.
    fold_constants:
        Whether plans are compiled with constant folding (keys the plan
        cache separately, exactly like ``compile_plan``).
    fusion:
        Whether plans are compiled with the post-schedule kernel-fusion
        stage (elementwise-chain collapsing + GEMM alpha folding; keys
        the plan cache separately).  Outputs are bit-identical; reports
        represent fused sites as combined kernel-call records while
        preserving FLOP totals and peak bytes.
    arena:
        Execution-buffer strategy, one of :data:`ARENA_MODES`.
        ``"preallocated"`` executes every compiled function through a
        per-``Concrete`` :class:`~repro.runtime.PlanArena` — repeated
        calls perform zero intermediate allocations after warmup.
    donate_feeds:
        Zero-copy feed binding (requires ``arena="preallocated"``).
        ``True`` declares every fed array already Fortran-ordered and
        the runtime's to alias for the duration of the call — the last
        per-call feed memcpys disappear; a feed failing the layout check
        raises ``ValueError`` naming the input (softened to a silent
        copy under ``validation="full"``).  ``"fallback"`` is the
        best-effort mode: alias what qualifies, copy the rest.
    shards:
        Multi-process sharded batching.  ``N >= 1`` routes
        ``session.run_batch`` through a per-plan
        :class:`~repro.runtime.ShardPool` of N worker processes
        (shared-memory feed rings, GIL-free dispatch; pools are cached
        on the session and torn down when it exits).  ``None`` keeps
        the in-process executors.
    plan_store:
        Directory of a persistent :class:`~repro.runtime.PlanStore`
        (``None`` disables it).  When set, the session consults the
        store after each trace — a hit skips the optimization pipeline
        *and* the cold compile (the stored optimized graph re-lowers,
        with large consts mmapped from ``.npy`` sidecars) — misses
        write the compiled plan back, and shard workers warm-start
        from the same directory.  The directory is created on session
        construction; concurrent sessions and processes may share it
        (writes are atomic).
    pin:
        Pinned steady-state execution (requires
        ``arena="preallocated"``).  Calls whose feed arrays are
        *identical objects* to the previous call's — the
        ``Session.pin`` usage pattern: allocate once, rewrite contents
        in place — skip feed binding and donation layout checks
        entirely and replay a cached
        :class:`~repro.runtime.PinnedBinding`.
    shard_respawn:
        Supervision policy of the session's shard pools: ``True``
        respawns a crashed/hung worker and replays its wave (bounded
        retries with backoff); ``False`` (default) breaks the pool on
        the first worker failure.
    shard_wave_deadline:
        Seconds a shard worker may take to answer one wave before the
        supervisor classifies it *hung* and reaps it (terminate→kill).
        ``None`` keeps the blocking wait.
    shard_fallback:
        What ``run_sharded`` does when its pool breaks mid-run:
        ``"error"`` (default) raises the
        :class:`~repro.runtime.ShardWorkerError`; ``"inline"``
        completes the batch on the in-process fused-arena path and
        records the downgrade in ``SessionStats.shard_fallback_runs``
        — degraded throughput, but the caller still gets bit-correct
        results.
    faults:
        Deterministic fault injection: a
        :class:`~repro.faults.FaultPlan`, a spec string (the
        ``REPRO_FAULTS`` grammar), or ``None``.  Installed
        process-wide when the session is constructed — chaos testing
        only, never production.
    autotune:
        Online plan autotuning (``None``/``False`` off, ``True`` for
        defaults, a dict of :class:`~repro.runtime.AutotuneConfig`
        fields, or an ``AutotuneConfig``).  Hot signatures race 2–4
        candidate plans — rewrite derivations plus compile-knob
        variants — on the caller's real feeds; a winner that is
        bit-identical to the canonical outputs and beats them by the
        configured margin is atomically promoted into the plan cache
        and (with ``plan_store``) persisted with its derivation
        record, so restarts serve the tuned plan with zero re-tuning.
    """

    backend: str = "tfsim"
    pipeline: str = "default"
    cache_capacity: int = 256
    batch_workers: int | None = None
    validation: str = "off"
    fold_constants: bool = False
    fusion: bool = False
    arena: str = "per-call"
    donate_feeds: "bool | str" = False
    shards: int | None = None
    pin: bool = False
    plan_store: str | None = None
    shard_respawn: bool = False
    shard_wave_deadline: float | None = None
    shard_fallback: str = "error"
    faults: object = None
    autotune: object = None

    def validate(self) -> None:
        """Raise :class:`ConfigError` if any field is out of range."""
        if not self.backend or not isinstance(self.backend, str):
            raise ConfigError(f"backend must be a non-empty string, got {self.backend!r}")
        if self.pipeline not in PIPELINES:
            raise ConfigError(
                f"pipeline must be one of {PIPELINES}, got {self.pipeline!r}"
            )
        if self.cache_capacity < 1:
            raise ConfigError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.batch_workers is not None and self.batch_workers < 0:
            raise ConfigError(
                f"batch_workers must be >= 0 or None, got {self.batch_workers}"
            )
        if self.validation not in VALIDATION_LEVELS:
            raise ConfigError(
                f"validation must be one of {VALIDATION_LEVELS}, "
                f"got {self.validation!r}"
            )
        if not isinstance(self.fusion, bool):
            raise ConfigError(f"fusion must be a bool, got {self.fusion!r}")
        if self.arena not in ARENA_MODES:
            raise ConfigError(
                f"arena must be one of {ARENA_MODES}, got {self.arena!r}"
            )
        if self.donate_feeds not in (False, True, "fallback"):
            raise ConfigError(
                "donate_feeds must be False, True or 'fallback', got "
                f"{self.donate_feeds!r}"
            )
        if self.donate_feeds and self.arena != "preallocated":
            raise ConfigError(
                "donate_feeds requires arena='preallocated' — per-call "
                "execution never copies feeds, so there is nothing to donate"
            )
        if self.shards is not None and (
            not isinstance(self.shards, int)
            or isinstance(self.shards, bool)
            or self.shards < 1
        ):
            raise ConfigError(
                f"shards must be an int >= 1 or None, got {self.shards!r}"
            )
        if self.plan_store is not None and (
            not isinstance(self.plan_store, (str, os.PathLike))
            or not os.fspath(self.plan_store)
        ):
            raise ConfigError(
                "plan_store must be a non-empty directory path or None, "
                f"got {self.plan_store!r}"
            )
        if not isinstance(self.pin, bool):
            raise ConfigError(f"pin must be a bool, got {self.pin!r}")
        if self.pin and self.arena != "preallocated":
            raise ConfigError(
                "pin requires arena='preallocated' — pinned bindings alias "
                "feeds into arena slot storage"
            )
        if not isinstance(self.shard_respawn, bool):
            raise ConfigError(
                f"shard_respawn must be a bool, got {self.shard_respawn!r}"
            )
        if self.shard_wave_deadline is not None and not (
            isinstance(self.shard_wave_deadline, (int, float))
            and not isinstance(self.shard_wave_deadline, bool)
            and self.shard_wave_deadline > 0
        ):
            raise ConfigError(
                "shard_wave_deadline must be > 0 seconds or None, got "
                f"{self.shard_wave_deadline!r}"
            )
        if self.shard_fallback not in ("error", "inline"):
            raise ConfigError(
                "shard_fallback must be 'error' or 'inline', got "
                f"{self.shard_fallback!r}"
            )
        if self.faults is not None:
            from .. import faults as faults_module

            if isinstance(self.faults, str):
                faults_module.FaultPlan.parse(self.faults)  # raises ConfigError
            elif not isinstance(
                self.faults, (faults_module.FaultPlan, faults_module.FaultSpec)
            ):
                raise ConfigError(
                    "faults must be a FaultPlan, FaultSpec, spec string, or "
                    f"None, got {type(self.faults).__name__}"
                )
        if self.autotune is not None:
            from ..runtime.autotune import AutotuneConfig

            AutotuneConfig.normalize(self.autotune)  # raises ConfigError

    def replace(self, **overrides: object) -> "Options":
        """A validated copy with ``overrides`` applied."""
        unknown = set(overrides) - {f.name for f in dataclasses.fields(Options)}
        if unknown:
            raise ConfigError(f"unknown option fields: {sorted(unknown)}")
        out = dataclasses.replace(self, **overrides)  # type: ignore[arg-type]
        out.validate()
        return out
