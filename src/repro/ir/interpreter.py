"""Reference executor for the IR, with kernel and FLOP accounting.

Every node is executed through the BLAS substrate; the interpreter records
which kernel ran with which dimensions, so experiments can report both
measured time *and* the modelled FLOP count (the paper reasons about both).

Kernel selection for ``matmul`` mirrors how the real frameworks lower onto
MKL: shape-based choice of DOT/GEMV/GEMM with transposes folded into the
kernel call.  A ``kernel`` attr — set by the opt-in property-aware
dispatcher pass — overrides the default choice with a structured kernel
(TRMM, SYRK, SYMM, diagonal or tridiagonal scaling), which is exactly the
dispatch the paper finds missing in TF/PyT.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from ..errors import GraphError, KernelError
from ..kernels import blas1, blas2, blas3, special
from ..kernels.flops import kernel_flops
from .graph import Graph
from .node import Node


@dataclasses.dataclass(frozen=True)
class KernelCall:
    """One executed kernel: name, problem dimensions, modelled FLOPs."""

    kernel: str
    dims: tuple[int, ...]
    flops: int
    node_op: str


@dataclasses.dataclass
class ExecutionReport:
    """Accounting data accumulated during one graph execution."""

    calls: list[KernelCall] = dataclasses.field(default_factory=list)
    peak_bytes: int = 0
    _live_bytes: int = 0

    def record(self, kernel: str, dims: tuple[int, ...], node_op: str) -> None:
        self.calls.append(
            KernelCall(kernel, dims, kernel_flops(kernel, *dims), node_op)
        )

    def record_free(self, kernel: str, node_op: str) -> None:
        """A kernel-free operation (view, copy, concat)."""
        self.calls.append(KernelCall(kernel, (), 0, node_op))

    @property
    def total_flops(self) -> int:
        return sum(c.flops for c in self.calls)

    def kernel_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for c in self.calls:
            out[c.kernel] = out.get(c.kernel, 0) + 1
        return out

    # -- memory model ---------------------------------------------------------

    @property
    def live_bytes(self) -> int:
        """Bytes currently modelled as live (allocated, not yet freed)."""
        return self._live_bytes

    def alloc(self, nbytes: int) -> None:
        self._live_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self._live_bytes)

    def free(self, nbytes: int) -> None:
        # Clamp at zero: a free larger than the live set is an accounting
        # bug in the caller, and letting the counter go negative would
        # silently understate every later peak.
        self._live_bytes = max(0, self._live_bytes - nbytes)


def _normalize_feed(value: object) -> np.ndarray:
    from ..tensor.tensor import Tensor

    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if arr.ndim == 0:
        arr = arr.reshape(1, 1)
    elif arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    return arr


class Interpreter:
    """Executes a :class:`Graph` over concrete arrays."""

    def __init__(self, *, record: bool = True) -> None:
        self.record = record

    # -- public API ------------------------------------------------------------

    def run(
        self,
        graph: Graph,
        feeds: Sequence[object] | Mapping[object, object],
        *,
        report: ExecutionReport | None = None,
    ) -> tuple[list[np.ndarray], ExecutionReport]:
        """Execute ``graph``; returns (outputs, report).

        ``feeds`` is either a positional sequence matching ``graph.inputs``
        or a mapping keyed by input Node or input name.
        """
        report = report if report is not None else ExecutionReport()
        env = self._bind(graph, feeds)
        self._check_feeds(graph, env)

        order = graph.topological()
        last_use: dict[int, int] = {}
        for idx, node in enumerate(order):
            for inp in node.inputs:
                last_use[id(inp)] = idx
        for out in graph.outputs:
            last_use[id(out)] = len(order)  # outputs stay live

        values: dict[int, np.ndarray] = dict(env)
        for idx, node in enumerate(order):
            if id(node) in values:
                continue
            args = [values[id(i)] for i in node.inputs]
            result = self._execute(node, args, report)
            values[id(node)] = result
            if self.record:
                report.alloc(result.nbytes)
            # Free operands whose last consumer was this node.
            for inp in node.inputs:
                if last_use.get(id(inp)) == idx and id(inp) in values:
                    if self.record and inp.op not in ("input", "const"):
                        report.free(values[id(inp)].nbytes)
                    if inp.op not in ("input", "const"):
                        del values[id(inp)]
        outputs = [values[id(o)] for o in graph.outputs]
        return outputs, report

    # -- internals ---------------------------------------------------------------

    def _bind(
        self, graph: Graph, feeds: Sequence[object] | Mapping[object, object]
    ) -> dict[int, np.ndarray]:
        env: dict[int, np.ndarray] = {}
        if isinstance(feeds, Mapping):
            by_name = {n.name: n for n in graph.inputs}
            for key, value in feeds.items():
                if isinstance(key, Node):
                    node = key
                elif isinstance(key, str):
                    try:
                        node = by_name[key]
                    except KeyError:
                        raise GraphError(f"no graph input named {key!r}") from None
                else:
                    raise GraphError(f"feed key must be Node or str, got {type(key)}")
                env[id(node)] = _normalize_feed(value)
        else:
            feeds = list(feeds)
            if len(feeds) != len(graph.inputs):
                raise GraphError(
                    f"graph has {len(graph.inputs)} inputs, got {len(feeds)} feeds"
                )
            for node, value in zip(graph.inputs, feeds):
                env[id(node)] = _normalize_feed(value)
        return env

    def _check_feeds(self, graph: Graph, env: dict[int, np.ndarray]) -> None:
        for node in graph.inputs:
            if id(node) not in env:
                raise GraphError(f"missing feed for input {node.name!r}")
            arr = env[id(node)]
            if tuple(arr.shape) != tuple(node.shape):
                raise GraphError(
                    f"feed for {node.name!r} has shape {arr.shape}, "
                    f"input declares {node.shape}"
                )

    def _execute(
        self, node: Node, args: list[np.ndarray], report: ExecutionReport
    ) -> np.ndarray:
        handler = getattr(self, f"_op_{node.op}", None)
        if handler is None:
            raise GraphError(f"interpreter has no handler for op {node.op!r}")
        return handler(node, args, report)

    # -- op handlers ---------------------------------------------------------------

    def _op_const(self, node, args, report):
        return node.attrs["value"]

    def _op_transpose(self, node, args, report):
        (x,) = args
        if self.record:
            report.record("transpose", x.shape, node.op)
        # Materialize, as tf.transpose does: an O(mn) copy, 0 FLOPs.
        return np.ascontiguousarray(x.T)

    def _op_add(self, node, args, report):
        a, b = args
        if self.record:
            report.record("add", a.shape, node.op)
        return a + b

    def _op_sub(self, node, args, report):
        a, b = args
        if self.record:
            report.record("sub", a.shape, node.op)
        return a - b

    def _op_neg(self, node, args, report):
        (a,) = args
        if self.record:
            report.record("scale", a.shape, node.op)
        return -a

    def _op_scale(self, node, args, report):
        (a,) = args
        if self.record:
            report.record("scale", a.shape, node.op)
        return a * a.dtype.type(node.attrs["alpha"])

    def _op_dot(self, node, args, report):
        a, b = args
        av = np.ascontiguousarray(a).ravel()
        bv = np.ascontiguousarray(b).ravel()
        if self.record:
            report.record("dot", (av.shape[0],), node.op)
        return np.array([[blas1.dot(av, bv)]], dtype=a.dtype)

    def _op_slice(self, node, args, report):
        (a,) = args
        sel = []
        for key in ("rows", "cols"):
            s = node.attrs.get(key)
            if s is None:
                sel.append(slice(None))
            elif isinstance(s, int):
                sel.append(slice(s, s + 1) if s != -1 else slice(s, None))
            else:
                sel.append(slice(s[0], s[1]))
        if self.record:
            report.record_free("slice", node.op)
        out = a[tuple(sel)]
        return np.ascontiguousarray(out)

    def _op_concat(self, node, args, report):
        if self.record:
            report.record_free("concat", node.op)
        return np.concatenate(args, axis=node.attrs.get("axis", 0))

    def _op_tridiagonal_matmul(self, node, args, report):
        t, b = args
        if self.record:
            report.record("tridiagonal_matmul", (t.shape[0], b.shape[1]), node.op)
        return special.tridiagonal_matmul(t, b)

    def _op_loop(self, node, args, report):
        body: Graph = node.attrs["body"]
        trip: int = node.attrs["trip_count"]
        carried, *captured = args
        sub = Interpreter(record=self.record)
        for i in range(trip):
            idx = np.array([[float(i)]], dtype=carried.dtype)
            outs, _ = sub.run(body, [idx, carried, *captured], report=report)
            carried = outs[0]
        return carried

    def _op_matmul(self, node, args, report):
        a, b = args
        trans_a = bool(node.attrs.get("trans_a"))
        trans_b = bool(node.attrs.get("trans_b"))
        hint = node.attrs.get("kernel")
        if hint is not None:
            return self._structured_matmul(node, a, b, trans_a, trans_b, hint, report)

        a_eff_shape = tuple(reversed(a.shape)) if trans_a else a.shape
        b_eff_shape = tuple(reversed(b.shape)) if trans_b else b.shape
        m, k = a_eff_shape
        _, n = b_eff_shape

        if m == 1 and n == 1 and k > 1:
            av = np.ascontiguousarray(a).ravel()
            bv = np.ascontiguousarray(b).ravel()
            if self.record:
                report.record("dot", (k,), node.op)
            return np.array([[blas1.dot(av, bv)]], dtype=a.dtype)
        if n == 1 and m > 1:
            x = np.ascontiguousarray(b).ravel()
            if self.record:
                report.record("gemv", (a.shape[0], a.shape[1]), node.op)
            return blas2.gemv(a, x, trans=trans_a).reshape(-1, 1)
        if m == 1 and n > 1:
            x = np.ascontiguousarray(a).ravel()
            if self.record:
                report.record("gemv", (b.shape[0], b.shape[1]), node.op)
            return blas2.gemv(b, x, trans=not trans_b).reshape(1, -1)
        if self.record:
            report.record("gemm", (m, k, n), node.op)
        return blas3.gemm(a, b, trans_a=trans_a, trans_b=trans_b)

    def _structured_matmul(self, node, a, b, trans_a, trans_b, hint, report):
        """Execute a matmul with a property-dispatch kernel hint."""
        opts = dict(node.attrs.get("kernel_opts", ()))
        a_eff = np.ascontiguousarray(a.T) if trans_a else a
        b_eff = np.ascontiguousarray(b.T) if trans_b else b
        m, k = a_eff.shape
        n = b_eff.shape[1]
        if hint == "zero":
            if self.record:
                report.record_free("zero", node.op)
            return np.zeros((m, n), dtype=a.dtype)
        if hint == "identity":
            if self.record:
                report.record_free("identity", node.op)
            return b_eff.copy()
        if hint == "identity_right":
            if self.record:
                report.record_free("identity", node.op)
            return a_eff.copy()
        if hint == "diag_matmul":
            if self.record:
                report.record("diag_matmul", (k, n), node.op)
            return special.diag_matmul(a_eff, b_eff)
        if hint == "tridiagonal_matmul":
            if self.record:
                report.record("tridiagonal_matmul", (k, n), node.op)
            return special.tridiagonal_matmul(a_eff, b_eff)
        if hint == "trmm":
            if self.record:
                report.record("trmm", (m, n), node.op)
            return blas3.trmm(a_eff, b_eff, lower=opts.get("lower", True))
        if hint == "trmm_right":
            if self.record:
                report.record("trmm", (n, m), node.op)
            return blas3.trmm(b_eff, a_eff, side_left=False,
                              lower=opts.get("lower", True))
        if hint == "symm":
            if self.record:
                report.record("symm", (m, n), node.op)
            return blas3.symm(a_eff, b_eff)
        if hint == "syrk":
            # matmul(A, A, trans_b=True) -> A Aᵀ; trans_a=True -> Aᵀ A.
            if self.record:
                report.record("syrk", (m, k), node.op)
            if trans_b and not trans_a:
                return blas3.syrk(a)
            if trans_a and not trans_b:
                return blas3.syrk(a, trans=True)
            raise KernelError("syrk hint requires exactly one transpose flag")
        raise KernelError(f"unknown matmul kernel hint {hint!r}")


def run_graph(
    graph: Graph,
    feeds: Sequence[object] | Mapping[object, object],
    *,
    record: bool = True,
) -> tuple[list[np.ndarray], ExecutionReport]:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(record=record).run(graph, feeds)
